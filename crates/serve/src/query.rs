//! The batched path-query engine.
//!
//! [`QueryEngine`] answers [`PathQuery`]s from the store's current
//! [`Snapshot`] on a pool of shard workers (`std::thread`, sized from
//! [`crate::pool::default_workers`]). Three serving techniques carry
//! the load:
//!
//! * **Sharding** — a query is routed to a shard by `(src, dst)` hash;
//!   each worker owns one shard's queues, so unrelated queries never
//!   contend on a lock.
//! * **Batching** — a worker drains its queues in batches and answers
//!   the whole batch from *one* snapshot read. Under load the queues are
//!   never empty, so per-query wakeup cost amortizes away — this is
//!   where closed-loop throughput scaling comes from.
//! * **Coalescing** — duplicate in-flight queries (same `(src, dst)`)
//!   share one [`AnswerCell`]: the worker computes once and fulfills
//!   once (a single `notify_all`), so a thundering herd asking for one
//!   hot pair costs one table walk and one wakeup, not N of each.
//!
//! Every answer is computed from a single `Arc<Snapshot>`, so its hops,
//! VL and epoch are internally consistent by construction — an epoch
//! swap mid-batch changes *future* batches, never a computed answer.
//!
//! # Admission under overload
//!
//! Each [`QueryClass`] runs under a [`ClassPolicy`]: a
//! [`dfsssp_core::Budget`] (the `max_nodes` axis refuses queries
//! against oversized views, the `deadline` axis bounds how stale a
//! redeemed ticket may be), a **deficit-weighted queue share**, a queue
//! cap, and a sheddable bit. Overload defenses fire in order of cost:
//!
//! 1. **Deficit-weighted round robin** — each shard keeps one queue per
//!    class; workers drain [`ClassPolicy::weight`] queries from a class
//!    per round ([`ShardState::pop_next`]), so a bulk backlog cannot
//!    starve interactive traffic.
//! 2. **Expired-in-queue shedding** — a query whose class deadline
//!    passed while it sat queued is failed with the budget trip *at the
//!    drain*, before a snapshot read is paid for it, and without
//!    consuming a batch slot.
//! 3. **Adaptive shed** — sheddable classes pass through the engine's
//!    [`ShedController`] (AIMD on admitted rate, keyed off the
//!    queue-delay EWMA workers report per batch).
//! 4. **Queue caps** — the backstop; a full class queue refuses with
//!    typed backpressure and tightens the shed controller.
//!
//! Both shed paths return [`ServeError::Overloaded`] carrying a
//! `retry_after` derived from the observed queue delay, so callers can
//! back off deterministically instead of hammering a saturated shard.

use crate::pool;
use crate::shed::{ShedConfig, ShedController};
use crate::snapshot::{Snapshot, SnapshotStore};
use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{Arc, Condvar, Mutex};
use dfsssp_core::{Budget, BudgetGuard, RouteError};
use fabric::{ChannelId, NodeId};
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::{counters, hists, phases, RecorderHandle};

/// One path question: how do I get from `src` to `dst`? Ids are
/// *reference* node ids (the stable physical identity fabric events
/// use), valid across degraded epochs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PathQuery {
    /// Source terminal (reference id).
    pub src: NodeId,
    /// Destination terminal (reference id).
    pub dst: NodeId,
    /// Admission class.
    pub class: QueryClass,
}

impl PathQuery {
    /// An [`QueryClass::Interactive`] query.
    pub fn new(src: NodeId, dst: NodeId) -> Self {
        PathQuery {
            src,
            dst,
            class: QueryClass::Interactive,
        }
    }
}

/// Which admission policy a query runs under.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// Latency-sensitive traffic (the default).
    #[default]
    Interactive,
    /// Bulk / best-effort traffic (sweeps, prefetchers).
    Bulk,
}

impl QueryClass {
    /// Number of classes (queue-array dimension).
    pub const COUNT: usize = 2;

    /// All classes, in [`QueryClass::index`] order.
    pub const ALL: [QueryClass; QueryClass::COUNT] = [QueryClass::Interactive, QueryClass::Bulk];

    /// Dense index for per-class arrays.
    pub(crate) fn index(self) -> usize {
        match self {
            QueryClass::Interactive => 0,
            QueryClass::Bulk => 1,
        }
    }

    /// Lower-case display name (also the metric-name suffix).
    pub fn name(self) -> &'static str {
        match self {
            QueryClass::Interactive => "interactive",
            QueryClass::Bulk => "bulk",
        }
    }
}

/// The answer: the channel hops of the path, the virtual layer the
/// path rides, and the epoch that produced both — always the *same*
/// epoch for all three fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathAnswer {
    /// Channels crossed, in order, in the answering epoch's view.
    pub hops: Vec<ChannelId>,
    /// Virtual layer of the path.
    pub vl: u8,
    /// Epoch the answer was computed from.
    pub epoch: u64,
}

/// Why a query was not answered. Every rejection under overload is one
/// of the *typed* variants ([`ServeError::Overloaded`] with a backoff
/// hint, or [`ServeError::Budget`] for an expired deadline) — callers
/// can always tell shed load from broken queries.
#[must_use = "a serve error distinguishes shed load from broken queries; inspect it"]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The terminal is quarantined (or gone) in the serving epoch.
    Quarantined(NodeId),
    /// The query is malformed (`src == dst`, a non-terminal id, …).
    BadQuery(String),
    /// The tables could not produce a path (should not happen for
    /// vet-clean epochs; surfaced instead of panicking).
    Unroutable(String),
    /// The query's class budget refused it (`max_nodes` admission or
    /// an expired `deadline` — including deadlines that passed while
    /// the query sat queued).
    Budget(RouteError),
    /// The shard shed this query: either the adaptive controller thinned
    /// a sheddable class, or the class queue hit its cap.
    Overloaded {
        /// How long to back off before resubmitting, derived from the
        /// observed queue delay. Always positive.
        retry_after: Duration,
    },
    /// The engine is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Quarantined(n) => write!(f, "terminal {} is quarantined", n.0),
            ServeError::BadQuery(why) => write!(f, "bad query: {why}"),
            ServeError::Unroutable(why) => write!(f, "unroutable: {why}"),
            ServeError::Budget(e) => write!(f, "admission refused: {e}"),
            ServeError::Overloaded { retry_after } => {
                write!(f, "overloaded: retry after {} us", retry_after.as_micros())
            }
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl Snapshot {
    /// Answer one `(src, dst)` reference pair from this epoch. All
    /// fields of the answer come from `self` — internal consistency is
    /// by construction.
    pub fn answer(&self, src: NodeId, dst: NodeId) -> Result<PathAnswer, ServeError> {
        if src == dst {
            return Err(ServeError::BadQuery("src == dst".into()));
        }
        let s = self.resolve(src).ok_or(ServeError::Quarantined(src))?;
        let d = self.resolve(dst).ok_or(ServeError::Quarantined(dst))?;
        let hops = self
            .routes
            .path_channels(&self.net, s, d)
            .map_err(|e| ServeError::Unroutable(e.to_string()))?;
        let (st, dt) = match (self.net.terminal_index(s), self.net.terminal_index(d)) {
            (Some(st), Some(dt)) => (st, dt),
            _ => return Err(ServeError::BadQuery("not a terminal".into())),
        };
        Ok(PathAnswer {
            hops,
            vl: self.routes.layer(st, dt),
            epoch: self.epoch,
        })
    }
}

/// Admission policy for one [`QueryClass`]: its budget, its weighted
/// share of each shard's drain capacity, and how it sheds.
#[derive(Clone, Debug)]
pub struct ClassPolicy {
    /// Size/deadline budget each query of this class runs under.
    pub budget: Budget,
    /// Deficit-weighted round-robin quantum: queries drained per visit
    /// when other classes are also backlogged. Relative weights are the
    /// fairness contract (8 vs 1 → 8:1 capacity split under overload).
    pub weight: u32,
    /// Per-shard queue cap; beyond it submissions are refused with
    /// [`ServeError::Overloaded`].
    pub max_queued: usize,
    /// Whether the adaptive [`ShedController`] may thin this class.
    /// Keep latency-sensitive classes `false` — they are protected by
    /// `weight` and shed only via deadline expiry and the queue cap.
    pub sheddable: bool,
}

impl Default for ClassPolicy {
    fn default() -> Self {
        ClassPolicy {
            budget: Budget::default(),
            weight: 1,
            max_queued: 4096,
            sheddable: false,
        }
    }
}

/// Per-class admission policies (weighted-fair across tenants).
#[derive(Clone, Debug)]
pub struct Admission {
    /// Policy for [`QueryClass::Interactive`] queries.
    pub interactive: ClassPolicy,
    /// Policy for [`QueryClass::Bulk`] queries.
    pub bulk: ClassPolicy,
}

impl Default for Admission {
    fn default() -> Self {
        Admission {
            interactive: ClassPolicy {
                weight: 8,
                ..ClassPolicy::default()
            },
            bulk: ClassPolicy {
                weight: 1,
                sheddable: true,
                ..ClassPolicy::default()
            },
        }
    }
}

impl Admission {
    fn policy(&self, class: QueryClass) -> &ClassPolicy {
        match class {
            QueryClass::Interactive => &self.interactive,
            QueryClass::Bulk => &self.bulk,
        }
    }

    /// The DWRR quanta, indexed by [`QueryClass::index`].
    fn quanta(&self) -> [u64; QueryClass::COUNT] {
        [
            u64::from(self.interactive.weight.max(1)),
            u64::from(self.bulk.weight.max(1)),
        ]
    }
}

/// Engine tunables.
#[derive(Clone, Debug)]
pub struct QueryOpts {
    /// Worker threads / shards (0 = [`pool::default_workers`]).
    pub workers: usize,
    /// Maximum queries a worker drains per batch.
    pub batch: usize,
    /// Admission control.
    pub admission: Admission,
    /// Adaptive shed controller tunables.
    pub shed: ShedConfig,
    /// Telemetry sink.
    pub recorder: RecorderHandle,
}

impl Default for QueryOpts {
    fn default() -> Self {
        QueryOpts {
            workers: 0,
            batch: 64,
            admission: Admission::default(),
            shed: ShedConfig::default(),
            recorder: telemetry::noop(),
        }
    }
}

pub(crate) type Key = (u32, u32);

#[derive(Default)]
pub(crate) struct AnswerState {
    pub(crate) answer: Option<Result<PathAnswer, ServeError>>,
    /// Waiters currently parked on `ready`; lets `fulfill` skip the
    /// wake syscall when every ticket-holder is still running.
    pub(crate) sleepers: usize,
}

/// A one-shot answer slot shared by *all* waiters coalesced onto one
/// in-flight `(src, dst)` key. The worker fulfills it exactly once.
pub(crate) struct AnswerCell {
    pub(crate) state: Mutex<AnswerState>,
    pub(crate) ready: Condvar,
    /// Tickets attached to this cell. Attach happens under the shard
    /// lock; the worker reads the final count after unlinking the cell
    /// from the pending map (under the same lock), so no attach races
    /// the read.
    pub(crate) waiters: AtomicUsize,
}

impl AnswerCell {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(AnswerCell {
            state: Mutex::new(AnswerState::default()),
            ready: Condvar::new(),
            waiters: AtomicUsize::new(1),
        })
    }

    pub(crate) fn fulfill(&self, answer: Result<PathAnswer, ServeError>) {
        let mut st = self.state.lock().unwrap();
        if st.answer.is_none() {
            st.answer = Some(answer);
            if st.sleepers > 0 {
                self.ready.notify_all();
            }
        }
    }

    pub(crate) fn wait(&self) -> Result<PathAnswer, ServeError> {
        let mut st = self.state.lock().unwrap();
        while st.answer.is_none() {
            st.sleepers += 1;
            st = self.ready.wait(st).unwrap();
            st.sleepers -= 1;
        }
        st.answer.clone().unwrap_or(Err(ServeError::ShuttingDown))
    }
}

/// A submitted query's handle; redeem it with [`Ticket::wait`]. A
/// dropped ticket abandons an answer somebody paid queue share for —
/// hence `#[must_use]`.
#[must_use = "a Ticket must be waited on; dropping it abandons the answer"]
pub struct Ticket {
    cell: Arc<AnswerCell>,
    guard: BudgetGuard,
    class: QueryClass,
    submitted: Instant,
    recorder: RecorderHandle,
}

impl Ticket {
    /// Block until the answer is in. A ticket redeemed after its class
    /// deadline gets the budget trip, not stale data. Records the
    /// submit-to-redeem latency into the class's SLO histogram when a
    /// recorder is attached.
    pub fn wait(self) -> Result<PathAnswer, ServeError> {
        let answer = self.cell.wait();
        if self.recorder.enabled() {
            self.recorder.observe(
                crate::slo::wait_hist(self.class),
                self.submitted.elapsed().as_micros() as u64,
            );
        }
        if let Err(e) = self.guard.check_deadline() {
            return Err(ServeError::Budget(e));
        }
        answer
    }

    /// The class this ticket was admitted under.
    pub fn class(&self) -> QueryClass {
        self.class
    }
}

/// One queued query: its coalescing key, when it was enqueued (for the
/// queue-delay signal) and when its class deadline expires (for
/// expired-in-queue shedding).
pub(crate) struct QueueEntry {
    pub(crate) key: Key,
    pub(crate) enqueued: Instant,
    /// `(expires_at, configured_deadline)`, from the class budget.
    pub(crate) deadline: Option<(Instant, Duration)>,
}

impl QueueEntry {
    /// An entry with no deadline, enqueued now (test/model helper).
    #[cfg(any(test, feature = "loom-tests"))]
    pub(crate) fn immediate(key: Key) -> Self {
        QueueEntry {
            key,
            enqueued: Instant::now(),
            deadline: None,
        }
    }
}

/// One shard: its per-class work queues and the coalescing map, under a
/// single lock so a submit is one lock acquisition end to end.
pub(crate) struct ShardState {
    /// One FIFO per class, indexed by [`QueryClass::index`].
    pub(crate) queues: [VecDeque<QueueEntry>; QueryClass::COUNT],
    /// Deficit counters of the weighted round robin.
    pub(crate) deficit: [u64; QueryClass::COUNT],
    /// The class the round robin is currently serving.
    pub(crate) cursor: usize,
    pub(crate) pending: FxHashMap<Key, Arc<AnswerCell>>,
    /// The shard worker is parked on `work`; submitters only pay the
    /// wake syscall when this is set.
    pub(crate) parked: bool,
    pub(crate) closed: bool,
}

impl ShardState {
    /// `true` when no class has queued work.
    pub(crate) fn queues_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Deficit-weighted round-robin pop: the next entry to serve, or
    /// `None` when every queue is empty. A class arriving at the cursor
    /// with an exhausted deficit is granted its quantum (the "refill");
    /// it keeps the cursor until the quantum or its queue runs out, so
    /// backlogged classes split drain capacity in `quanta` proportion.
    pub(crate) fn pop_next(&mut self, quanta: &[u64; QueryClass::COUNT]) -> Option<QueueEntry> {
        if self.queues_empty() {
            return None;
        }
        loop {
            let c = self.cursor;
            if self.queues[c].is_empty() {
                self.deficit[c] = 0;
                self.cursor = (c + 1) % QueryClass::COUNT;
                continue;
            }
            if self.deficit[c] == 0 {
                // Fresh visit this round: grant the class its quantum.
                self.deficit[c] = quanta[c].max(1);
            }
            self.deficit[c] -= 1;
            let entry = self.queues[c].pop_front();
            if self.queues[c].is_empty() {
                self.deficit[c] = 0;
            }
            if self.deficit[c] == 0 {
                self.cursor = (c + 1) % QueryClass::COUNT;
            }
            return entry;
        }
    }
}

pub(crate) struct Shard {
    pub(crate) state: Mutex<ShardState>,
    pub(crate) work: Condvar,
}

impl Shard {
    pub(crate) fn new() -> Self {
        Shard {
            state: Mutex::new(ShardState {
                queues: std::array::from_fn(|_| VecDeque::new()),
                deficit: [0; QueryClass::COUNT],
                cursor: 0,
                pending: FxHashMap::default(),
                parked: false,
                closed: false,
            }),
            work: Condvar::new(),
        }
    }
}

struct Engine {
    store: Arc<SnapshotStore>,
    shards: Vec<Shard>,
    admission: Admission,
    shed: Arc<ShedController>,
    recorder: RecorderHandle,
}

/// The batched, coalescing path-query engine. See the module docs.
pub struct QueryEngine {
    inner: Arc<Engine>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryEngine {
    /// Spawn the shard workers over `store`'s snapshots.
    pub fn new(store: Arc<SnapshotStore>, opts: QueryOpts) -> Self {
        let shards = if opts.workers == 0 {
            pool::default_workers()
        } else {
            opts.workers
        };
        let inner = Arc::new(Engine {
            store,
            shards: (0..shards).map(|_| Shard::new()).collect(),
            admission: opts.admission,
            shed: Arc::new(ShedController::new(opts.shed)),
            recorder: opts.recorder,
        });
        let workers = (0..shards)
            .map(|shard| {
                let engine = inner.clone();
                let batch = opts.batch.max(1);
                std::thread::Builder::new()
                    .name(format!("serve-q{shard}"))
                    .spawn(move || engine.worker(shard, batch))
                    .expect("spawn shard worker")
            })
            .collect();
        QueryEngine { inner, workers }
    }

    /// Worker / shard count.
    pub fn workers(&self) -> usize {
        self.inner.shards.len()
    }

    /// The engine's adaptive shed controller (shared with the workers);
    /// lets a [`crate::RouteServer`] fold shed state into its event
    /// outcomes and benches report the admitted-rate floor.
    pub fn shed_controller(&self) -> Arc<ShedController> {
        self.inner.shed.clone()
    }

    /// Submit a query; the ticket blocks until a shard worker answers.
    pub fn submit(&self, query: PathQuery) -> Result<Ticket, ServeError> {
        let (guard, cell, submitted) = self.inner.submit(query)?;
        Ok(Ticket {
            cell,
            guard,
            class: query.class,
            submitted,
            recorder: self.inner.recorder.clone(),
        })
    }

    /// Submit and wait — the closed-loop client call.
    pub fn query(&self, query: PathQuery) -> Result<PathAnswer, ServeError> {
        self.submit(query)?.wait()
    }

    /// Submit a whole batch, then collect every answer, in order.
    pub fn query_batch(&self, queries: &[PathQuery]) -> Vec<Result<PathAnswer, ServeError>> {
        let tickets: Vec<Result<Ticket, ServeError>> =
            queries.iter().map(|&q| self.submit(q)).collect();
        tickets
            .into_iter()
            .map(|t| match t {
                Ok(ticket) => ticket.wait(),
                Err(e) => Err(e),
            })
            .collect()
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        for shard in &self.inner.shards {
            shard.state.lock().unwrap().closed = true;
            shard.work.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Workers drain their queues before exiting, so this is empty
        // unless a submit raced the close; fail those waiters — the
        // workers are gone, nobody else will.
        for shard in &self.inner.shards {
            let leftovers: Vec<Arc<AnswerCell>> = {
                let mut st = shard.state.lock().unwrap();
                for q in &mut st.queues {
                    q.clear();
                }
                st.pending.drain().map(|(_, cell)| cell).collect()
            };
            for cell in leftovers {
                cell.fulfill(Err(ServeError::ShuttingDown));
            }
        }
    }
}

impl Engine {
    fn shard_of(key: Key) -> usize {
        // Fibonacci mix; shards are a small count, spread the pairs.
        let h = (u64::from(key.0) << 32 | u64::from(key.1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 33) as usize
    }

    fn submit(
        &self,
        query: PathQuery,
    ) -> Result<(BudgetGuard, Arc<AnswerCell>, Instant), ServeError> {
        let rec = &*self.recorder;
        let policy = self.admission.policy(query.class);
        let guard = policy.budget.start();
        // Admission: is the serving view within this class's size cap?
        if let Err(e) = guard.admit(&self.store.read().net) {
            rec.add(counters::QUERIES_REJECTED, 1);
            return Err(ServeError::Budget(e));
        }
        let now = Instant::now();
        let key: Key = (query.src.0, query.dst.0);
        let shard = &self.shards[Self::shard_of(key) % self.shards.len()];
        let mut st = shard.state.lock().unwrap();
        if st.closed {
            return Err(ServeError::ShuttingDown);
        }
        if let Some(cell) = st.pending.get(&key) {
            // Coalesce: ride the in-flight computation for this key.
            // Free for the fabric, so it bypasses the shed gates.
            cell.waiters.fetch_add(1, Ordering::Relaxed);
            let cell = cell.clone();
            drop(st);
            rec.add(counters::QUERIES_COALESCED, 1);
            return Ok((guard, cell, now));
        }
        // Adaptive shed: under sustained queue delay the AIMD
        // controller thins best-effort admissions before queues grow.
        if policy.sheddable && !self.shed.admit() {
            drop(st);
            rec.add(counters::QUERIES_SHED, 1);
            rec.add(counters::QUERIES_REJECTED, 1);
            return Err(ServeError::Overloaded {
                retry_after: self.shed.retry_after(),
            });
        }
        let class = query.class.index();
        if st.queues[class].len() >= policy.max_queued {
            drop(st);
            // A full queue means the backlog got ahead of the servo.
            self.shed.on_queue_full(rec);
            rec.add(counters::QUERIES_REJECTED, 1);
            return Err(ServeError::Overloaded {
                retry_after: self.shed.retry_after(),
            });
        }
        let cell = AnswerCell::new();
        st.pending.insert(key, cell.clone());
        st.queues[class].push_back(QueueEntry {
            key,
            enqueued: now,
            deadline: policy.budget.deadline.map(|d| (now + d, d)),
        });
        let wake = st.parked;
        drop(st);
        if wake {
            shard.work.notify_one();
        }
        Ok((guard, cell, now))
    }

    fn worker(&self, shard: usize, batch: usize) {
        let rec = &*self.recorder;
        let quanta = self.admission.quanta();
        let shard = &self.shards[shard];
        let mut drained: Vec<(Key, Arc<AnswerCell>)> = Vec::with_capacity(batch);
        // Expired-in-queue queries: fulfilled with the budget trip
        // outside the shard lock, charged no batch slot.
        let mut expired: Vec<(Arc<AnswerCell>, u64)> = Vec::new();
        loop {
            let mut max_wait_us = 0u64;
            let shutting_down = {
                let mut st = shard.state.lock().unwrap();
                let mut now = Instant::now();
                loop {
                    if drained.len() >= batch {
                        break;
                    }
                    if let Some(entry) = st.pop_next(&quanta) {
                        // Unlinking the cell here (under the shard
                        // lock) freezes its waiter count: later
                        // duplicates start a fresh entry.
                        let Some(cell) = st.pending.remove(&entry.key) else {
                            continue;
                        };
                        let waited = now.saturating_duration_since(entry.enqueued);
                        max_wait_us = max_wait_us.max(waited.as_micros() as u64);
                        if let Some((at, total)) = entry.deadline {
                            if now >= at {
                                // Expired while queued: shed before a
                                // snapshot read is paid; no batch slot.
                                expired.push((cell, total.as_millis() as u64));
                                continue;
                            }
                        }
                        drained.push((entry.key, cell));
                        continue;
                    }
                    if !drained.is_empty() || !expired.is_empty() || st.closed {
                        break;
                    }
                    st.parked = true;
                    st = shard.work.wait(st).unwrap();
                    st.parked = false;
                    now = Instant::now();
                }
                drained.is_empty() && expired.is_empty() && st.closed
            };
            for (cell, limit) in expired.drain(..) {
                rec.add(counters::QUERIES_EXPIRED, 1);
                cell.fulfill(Err(ServeError::Budget(RouteError::BudgetExceeded {
                    resource: "deadline_ms",
                    limit,
                })));
            }
            if shutting_down {
                return; // closed and fully drained
            }
            if max_wait_us > 0 || !drained.is_empty() {
                // The shed controller's congestion signal: the worst
                // in-queue wait this drain observed.
                self.shed.observe_queue_delay(max_wait_us, rec);
                if rec.enabled() {
                    rec.observe(hists::QUEUE_DELAY_US, max_wait_us);
                }
            }
            if drained.is_empty() {
                continue;
            }
            // One snapshot serves the whole batch: consistent answers,
            // one lock-free read amortized over every query drained.
            let snap = self.store.read();
            let keys = drained.len();
            let mut served = 0u64;
            telemetry::timed(rec, phases::SERVE_BATCH, || {
                for (key, cell) in drained.drain(..) {
                    let answer = snap.answer(NodeId(key.0), NodeId(key.1));
                    served += cell.waiters.load(Ordering::Relaxed) as u64;
                    cell.fulfill(answer);
                }
            });
            if rec.enabled() {
                rec.add(counters::QUERIES_SERVED, served);
                rec.observe(hists::SERVE_BATCH_SIZE, keys as u64);
                if snap.epoch < self.store.epoch() {
                    // An epoch swap landed mid-batch; these answers are
                    // one epoch behind — consistent, just not newest.
                    rec.add(counters::STALE_READS, served);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsssp_core::{ComputeCtx, DfSssp, RoutingEngine};
    use fabric::topo;

    fn engine_over(net: &fabric::Network, opts: QueryOpts) -> (Arc<SnapshotStore>, QueryEngine) {
        let routes = DfSssp::new().route_in(net, &ComputeCtx::seq()).unwrap();
        let store = SnapshotStore::open(net.clone(), routes, None).unwrap();
        let engine = QueryEngine::new(store.clone(), opts);
        (store, engine)
    }

    #[test]
    fn answers_match_direct_table_walks() {
        let net = topo::torus(&[3, 3], 1);
        let (store, engine) = engine_over(&net, QueryOpts::default());
        let snap = store.read();
        for &src in net.terminals() {
            for &dst in net.terminals() {
                if src == dst {
                    continue;
                }
                let a = engine.query(PathQuery::new(src, dst)).unwrap();
                assert_eq!(a.epoch, 0);
                assert_eq!(a.hops, snap.routes.path_channels(&net, src, dst).unwrap());
                let (st, dt) = (
                    net.terminal_index(src).unwrap(),
                    net.terminal_index(dst).unwrap(),
                );
                assert_eq!(a.vl, snap.routes.layer(st, dt));
            }
        }
    }

    #[test]
    fn batch_interface_answers_in_order() {
        let net = topo::kary_ntree(4, 2);
        let (_, engine) = engine_over(&net, QueryOpts::default());
        let ts = net.terminals();
        let queries: Vec<PathQuery> = (1..ts.len())
            .map(|i| PathQuery::new(ts[0], ts[i]))
            .collect();
        let answers = engine.query_batch(&queries);
        assert_eq!(answers.len(), queries.len());
        for a in answers {
            let a = a.unwrap();
            assert!(!a.hops.is_empty());
        }
    }

    #[test]
    fn duplicate_queries_coalesce() {
        let net = topo::torus(&[3, 3], 1);
        // std Arc: RecorderHandle is telemetry's alias, outside the shim.
        let collector = std::sync::Arc::new(telemetry::Collector::new());
        let opts = QueryOpts {
            recorder: collector.clone(),
            workers: 1,
            ..QueryOpts::default()
        };
        let (_, engine) = engine_over(&net, opts);
        let (a, b) = (net.terminals()[0], net.terminals()[1]);
        // Saturate one key from several client threads; at least some
        // must coalesce onto in-flight computations.
        std::thread::scope(|s| {
            for _ in 0..8 {
                let engine = &engine;
                s.spawn(move || {
                    for _ in 0..200 {
                        engine.query(PathQuery::new(a, b)).unwrap();
                    }
                });
            }
        });
        let snap = collector.snapshot();
        assert_eq!(
            snap.counters["queries_served"],
            8 * 200,
            "every query answered exactly once"
        );
        assert!(
            snap.counters.get("queries_coalesced").copied().unwrap_or(0) > 0,
            "a hot pair under concurrent load must coalesce"
        );
        assert!(snap.histograms.contains_key("serve_batch_size"));
        // Closed-loop clients redeem their tickets: the SLO histogram
        // for the class is populated.
        assert!(snap.histograms.contains_key("wait_us_interactive"));
    }

    #[test]
    fn bad_queries_are_typed_errors() {
        let net = topo::ring(4, 1);
        let (_, engine) = engine_over(&net, QueryOpts::default());
        let t = net.terminals()[0];
        assert!(matches!(
            engine.query(PathQuery::new(t, t)),
            Err(ServeError::BadQuery(_))
        ));
        let sw = net.switches()[0];
        assert!(matches!(
            engine.query(PathQuery::new(sw, t)),
            Err(ServeError::Quarantined(_))
        ));
    }

    #[test]
    fn admission_budget_rejects_oversized_views() {
        let net = topo::torus(&[4, 4], 1);
        let opts = QueryOpts {
            admission: Admission {
                // The torus view has 32 nodes; admit at most 8.
                interactive: ClassPolicy {
                    budget: Budget::new().max_nodes(8),
                    ..ClassPolicy::default()
                },
                ..Admission::default()
            },
            ..QueryOpts::default()
        };
        let (_, engine) = engine_over(&net, opts);
        let (a, b) = (net.terminals()[0], net.terminals()[1]);
        match engine.query(PathQuery::new(a, b)) {
            Err(ServeError::Budget(RouteError::BudgetExceeded { resource, .. })) => {
                assert_eq!(resource, "nodes")
            }
            other => panic!("expected budget rejection, got {other:?}"),
        }
        // Bulk class is not configured: it still flows.
        let bulk = PathQuery {
            class: QueryClass::Bulk,
            ..PathQuery::new(a, b)
        };
        assert!(engine.query(bulk).is_ok());
    }

    #[test]
    fn expired_deadline_surfaces_as_budget_trip() {
        let net = topo::ring(4, 1);
        let opts = QueryOpts {
            admission: Admission {
                interactive: ClassPolicy {
                    budget: Budget::new().deadline(Duration::ZERO),
                    ..ClassPolicy::default()
                },
                ..Admission::default()
            },
            ..QueryOpts::default()
        };
        let (_, engine) = engine_over(&net, opts);
        let (a, b) = (net.terminals()[0], net.terminals()[1]);
        match engine.query(PathQuery::new(a, b)) {
            Err(ServeError::Budget(RouteError::BudgetExceeded { resource, .. })) => {
                assert_eq!(resource, "deadline_ms")
            }
            other => panic!("expected deadline trip, got {other:?}"),
        }
    }

    #[test]
    fn expired_in_queue_sheds_without_a_batch_slot() {
        // A zero deadline expires every query *in the queue*: the drain
        // must fail it with the budget trip before paying a snapshot
        // read — queries_expired counts up, queries_served stays 0.
        let net = topo::ring(4, 1);
        let collector = std::sync::Arc::new(telemetry::Collector::new());
        let opts = QueryOpts {
            workers: 1,
            recorder: collector.clone(),
            admission: Admission {
                bulk: ClassPolicy {
                    budget: Budget::new().deadline(Duration::ZERO),
                    ..ClassPolicy::default()
                },
                ..Admission::default()
            },
            ..QueryOpts::default()
        };
        let (_, engine) = engine_over(&net, opts);
        let (a, b) = (net.terminals()[0], net.terminals()[1]);
        let q = PathQuery {
            class: QueryClass::Bulk,
            ..PathQuery::new(a, b)
        };
        for _ in 0..8 {
            match engine.query(q) {
                Err(ServeError::Budget(RouteError::BudgetExceeded { resource, .. })) => {
                    assert_eq!(resource, "deadline_ms")
                }
                other => panic!("expected in-queue expiry, got {other:?}"),
            }
        }
        drop(engine);
        let snap = collector.snapshot();
        assert!(snap.counters.get("queries_expired").copied().unwrap_or(0) >= 1);
        assert_eq!(
            snap.counters.get("queries_served").copied().unwrap_or(0),
            0,
            "an expired query must not consume a batch slot"
        );
    }

    #[test]
    fn full_class_queue_refuses_with_typed_backpressure() {
        let net = topo::kary_ntree(4, 2);
        let opts = QueryOpts {
            workers: 1,
            admission: Admission {
                bulk: ClassPolicy {
                    // Cap of zero: every non-coalesced bulk submit must
                    // bounce with a positive retry hint.
                    max_queued: 0,
                    sheddable: false,
                    ..ClassPolicy::default()
                },
                ..Admission::default()
            },
            ..QueryOpts::default()
        };
        let (_, engine) = engine_over(&net, opts);
        let (a, b) = (net.terminals()[0], net.terminals()[1]);
        let bulk = PathQuery {
            class: QueryClass::Bulk,
            ..PathQuery::new(a, b)
        };
        match engine.query(bulk) {
            Err(ServeError::Overloaded { retry_after }) => {
                assert!(retry_after > Duration::ZERO);
            }
            other => panic!("expected typed backpressure, got {other:?}"),
        }
        // Interactive queries are untouched by the bulk cap.
        assert!(engine.query(PathQuery::new(a, b)).is_ok());
    }

    #[test]
    fn weighted_drain_splits_capacity_by_quanta() {
        // Pure scheduling test over ShardState: both classes backlogged,
        // quanta 8:1 — 18 pops must split 16:2.
        let shard = Shard::new();
        let mut st = shard.state.lock().unwrap();
        for i in 0..100u32 {
            st.queues[0].push_back(QueueEntry::immediate((i, 1)));
            st.queues[1].push_back(QueueEntry::immediate((i, 2)));
        }
        let quanta = [8u64, 1u64];
        let mut by_class = [0usize; 2];
        for _ in 0..18 {
            let e = st.pop_next(&quanta).unwrap();
            by_class[(e.key.1 - 1) as usize] += 1;
        }
        assert_eq!(by_class, [16, 2], "DWRR must honor the 8:1 weights");
        // A lone backlogged class gets everything.
        st.queues[0].clear();
        st.deficit = [0, 0];
        for _ in 0..50 {
            let e = st.pop_next(&quanta).unwrap();
            assert_eq!(e.key.1, 2);
        }
    }

    #[test]
    fn shed_controller_thins_only_sheddable_classes() {
        let net = topo::kary_ntree(4, 2);
        let opts = QueryOpts {
            workers: 1,
            shed: ShedConfig {
                tick: Duration::from_millis(10),
                ..ShedConfig::default()
            },
            ..QueryOpts::default()
        };
        let (_, engine) = engine_over(&net, opts);
        // Force the controller to its floor by hand: one multiplicative
        // decrease fires per tick, so pace the pressure across ticks.
        let shed = engine.shed_controller();
        for _ in 0..6 {
            std::thread::sleep(Duration::from_millis(11));
            shed.on_queue_full(&telemetry::Noop);
        }
        assert!(shed.shedding());
        let ts = net.terminals();
        let (mut ok, mut dropped) = (0u32, 0u32);
        for i in 0..200 {
            let q = PathQuery {
                class: QueryClass::Bulk,
                ..PathQuery::new(ts[i % ts.len()], ts[(i + 1) % ts.len()])
            };
            match engine.query(q) {
                Ok(_) => ok += 1,
                Err(ServeError::Overloaded { retry_after }) => {
                    assert!(retry_after > Duration::ZERO);
                    dropped += 1;
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert!(dropped > 0, "a floored controller must thin bulk traffic");
        assert!(ok > 0, "the floor must keep some bulk flowing");
        // Interactive is never rate-shed.
        for i in 0..50 {
            engine
                .query(PathQuery::new(ts[i % ts.len()], ts[(i + 1) % ts.len()]))
                .unwrap();
        }
    }

    #[test]
    fn shutdown_is_clean_under_load() {
        let net = topo::kary_ntree(4, 2);
        let (_, engine) = engine_over(&net, QueryOpts::default());
        let ts = net.terminals().to_vec();
        std::thread::scope(|s| {
            for off in 1..4 {
                let engine = &engine;
                let ts = &ts;
                s.spawn(move || {
                    for i in 0..500 {
                        let q = PathQuery::new(ts[i % ts.len()], ts[(i + off) % ts.len()]);
                        if q.src != q.dst {
                            let _ = engine.query(q);
                        }
                    }
                });
            }
        });
        drop(engine); // joins workers; must not hang or panic
    }
}
