//! The batched path-query engine.
//!
//! [`QueryEngine`] answers [`PathQuery`]s from the store's current
//! [`Snapshot`] on a pool of shard workers (`std::thread`, sized from
//! [`crate::pool::default_workers`]). Three serving techniques carry
//! the load:
//!
//! * **Sharding** — a query is routed to a shard by `(src, dst)` hash;
//!   each worker owns one shard's queue, so unrelated queries never
//!   contend on a lock.
//! * **Batching** — a worker drains its queue in batches and answers
//!   the whole batch from *one* snapshot read. Under load the queue is
//!   never empty, so per-query wakeup cost amortizes away — this is
//!   where closed-loop throughput scaling comes from.
//! * **Coalescing** — duplicate in-flight queries (same `(src, dst)`)
//!   share one [`AnswerCell`]: the worker computes once and fulfills
//!   once (a single `notify_all`), so a thundering herd asking for one
//!   hot pair costs one table walk and one wakeup, not N of each.
//!
//! Every answer is computed from a single `Arc<Snapshot>`, so its hops,
//! VL and epoch are internally consistent by construction — an epoch
//! swap mid-batch changes *future* batches, never a computed answer.
//!
//! Admission control reuses [`dfsssp_core::Budget`] per [`QueryClass`]:
//! the `max_nodes` axis refuses queries against views larger than the
//! class admits, the `deadline` axis expires queries whose tickets are
//! redeemed too late, and a per-shard in-flight cap sheds load before
//! queues grow unboundedly.

use crate::pool;
use crate::snapshot::{Snapshot, SnapshotStore};
use dfsssp_core::{Budget, BudgetGuard, RouteError};
use fabric::{ChannelId, NodeId};
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use telemetry::{counters, hists, phases, RecorderHandle};

/// One path question: how do I get from `src` to `dst`? Ids are
/// *reference* node ids (the stable physical identity fabric events
/// use), valid across degraded epochs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PathQuery {
    /// Source terminal (reference id).
    pub src: NodeId,
    /// Destination terminal (reference id).
    pub dst: NodeId,
    /// Admission class.
    pub class: QueryClass,
}

impl PathQuery {
    /// An [`QueryClass::Interactive`] query.
    pub fn new(src: NodeId, dst: NodeId) -> Self {
        PathQuery {
            src,
            dst,
            class: QueryClass::Interactive,
        }
    }
}

/// Which admission budget a query runs under.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// Latency-sensitive traffic (the default).
    #[default]
    Interactive,
    /// Bulk / best-effort traffic (sweeps, prefetchers).
    Bulk,
}

/// The answer: the channel hops of the path, the virtual layer the
/// path rides, and the epoch that produced both — always the *same*
/// epoch for all three fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathAnswer {
    /// Channels crossed, in order, in the answering epoch's view.
    pub hops: Vec<ChannelId>,
    /// Virtual layer of the path.
    pub vl: u8,
    /// Epoch the answer was computed from.
    pub epoch: u64,
}

/// Why a query was not answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The terminal is quarantined (or gone) in the serving epoch.
    Quarantined(NodeId),
    /// The query is malformed (`src == dst`, a non-terminal id, …).
    BadQuery(String),
    /// The tables could not produce a path (should not happen for
    /// vet-clean epochs; surfaced instead of panicking).
    Unroutable(String),
    /// The query's class budget refused it (`max_nodes` admission or
    /// an expired `deadline`).
    Budget(RouteError),
    /// Too many queries in flight on this shard.
    Overloaded {
        /// Queries in flight on the shard.
        inflight: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The engine is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Quarantined(n) => write!(f, "terminal {} is quarantined", n.0),
            ServeError::BadQuery(why) => write!(f, "bad query: {why}"),
            ServeError::Unroutable(why) => write!(f, "unroutable: {why}"),
            ServeError::Budget(e) => write!(f, "admission refused: {e}"),
            ServeError::Overloaded { inflight, limit } => {
                write!(f, "overloaded: {inflight} in flight, limit {limit}")
            }
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl Snapshot {
    /// Answer one `(src, dst)` reference pair from this epoch. All
    /// fields of the answer come from `self` — internal consistency is
    /// by construction.
    pub fn answer(&self, src: NodeId, dst: NodeId) -> Result<PathAnswer, ServeError> {
        if src == dst {
            return Err(ServeError::BadQuery("src == dst".into()));
        }
        let s = self.resolve(src).ok_or(ServeError::Quarantined(src))?;
        let d = self.resolve(dst).ok_or(ServeError::Quarantined(dst))?;
        let hops = self
            .routes
            .path_channels(&self.net, s, d)
            .map_err(|e| ServeError::Unroutable(e.to_string()))?;
        let (st, dt) = match (self.net.terminal_index(s), self.net.terminal_index(d)) {
            (Some(st), Some(dt)) => (st, dt),
            _ => return Err(ServeError::BadQuery("not a terminal".into())),
        };
        Ok(PathAnswer {
            hops,
            vl: self.routes.layer(st, dt),
            epoch: self.epoch,
        })
    }
}

/// Per-class admission budgets plus the load-shedding cap.
#[derive(Clone, Debug)]
pub struct Admission {
    /// Budget for [`QueryClass::Interactive`] queries.
    pub interactive: Budget,
    /// Budget for [`QueryClass::Bulk`] queries.
    pub bulk: Budget,
    /// Maximum distinct queries in flight per shard before new ones are
    /// refused with [`ServeError::Overloaded`].
    pub max_inflight: usize,
}

impl Default for Admission {
    fn default() -> Self {
        Admission {
            interactive: Budget::default(),
            bulk: Budget::default(),
            max_inflight: 4096,
        }
    }
}

impl Admission {
    fn budget(&self, class: QueryClass) -> &Budget {
        match class {
            QueryClass::Interactive => &self.interactive,
            QueryClass::Bulk => &self.bulk,
        }
    }
}

/// Engine tunables.
#[derive(Clone, Debug)]
pub struct QueryOpts {
    /// Worker threads / shards (0 = [`pool::default_workers`]).
    pub workers: usize,
    /// Maximum queries a worker drains per batch.
    pub batch: usize,
    /// Admission control.
    pub admission: Admission,
    /// Telemetry sink.
    pub recorder: RecorderHandle,
}

impl Default for QueryOpts {
    fn default() -> Self {
        QueryOpts {
            workers: 0,
            batch: 64,
            admission: Admission::default(),
            recorder: telemetry::noop(),
        }
    }
}

pub(crate) type Key = (u32, u32);

#[derive(Default)]
pub(crate) struct AnswerState {
    pub(crate) answer: Option<Result<PathAnswer, ServeError>>,
    /// Waiters currently parked on `ready`; lets `fulfill` skip the
    /// wake syscall when every ticket-holder is still running.
    pub(crate) sleepers: usize,
}

/// A one-shot answer slot shared by *all* waiters coalesced onto one
/// in-flight `(src, dst)` key. The worker fulfills it exactly once.
pub(crate) struct AnswerCell {
    pub(crate) state: Mutex<AnswerState>,
    pub(crate) ready: Condvar,
    /// Tickets attached to this cell. Attach happens under the shard
    /// lock; the worker reads the final count after unlinking the cell
    /// from the pending map (under the same lock), so no attach races
    /// the read.
    pub(crate) waiters: AtomicUsize,
}

impl AnswerCell {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(AnswerCell {
            state: Mutex::new(AnswerState::default()),
            ready: Condvar::new(),
            waiters: AtomicUsize::new(1),
        })
    }

    pub(crate) fn fulfill(&self, answer: Result<PathAnswer, ServeError>) {
        let mut st = self.state.lock().unwrap();
        if st.answer.is_none() {
            st.answer = Some(answer);
            if st.sleepers > 0 {
                self.ready.notify_all();
            }
        }
    }

    pub(crate) fn wait(&self) -> Result<PathAnswer, ServeError> {
        let mut st = self.state.lock().unwrap();
        while st.answer.is_none() {
            st.sleepers += 1;
            st = self.ready.wait(st).unwrap();
            st.sleepers -= 1;
        }
        st.answer.clone().unwrap_or(Err(ServeError::ShuttingDown))
    }
}

/// A submitted query's handle; redeem it with [`Ticket::wait`].
pub struct Ticket {
    cell: Arc<AnswerCell>,
    guard: BudgetGuard,
}

impl Ticket {
    /// Block until the answer is in. A ticket redeemed after its class
    /// deadline gets the budget trip, not stale data.
    pub fn wait(self) -> Result<PathAnswer, ServeError> {
        let answer = self.cell.wait();
        if let Err(e) = self.guard.check_deadline() {
            return Err(ServeError::Budget(e));
        }
        answer
    }
}

/// One shard: its work queue and the coalescing map, under a single
/// lock so a submit is one lock acquisition end to end.
pub(crate) struct ShardState {
    pub(crate) queue: VecDeque<Key>,
    pub(crate) pending: FxHashMap<Key, Arc<AnswerCell>>,
    /// The shard worker is parked on `work`; submitters only pay the
    /// wake syscall when this is set.
    pub(crate) parked: bool,
    pub(crate) closed: bool,
}

pub(crate) struct Shard {
    pub(crate) state: Mutex<ShardState>,
    pub(crate) work: Condvar,
}

impl Shard {
    pub(crate) fn new() -> Self {
        Shard {
            state: Mutex::new(ShardState {
                queue: VecDeque::new(),
                pending: FxHashMap::default(),
                parked: false,
                closed: false,
            }),
            work: Condvar::new(),
        }
    }
}

struct Engine {
    store: Arc<SnapshotStore>,
    shards: Vec<Shard>,
    admission: Admission,
    recorder: RecorderHandle,
}

/// The batched, coalescing path-query engine. See the module docs.
pub struct QueryEngine {
    inner: Arc<Engine>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryEngine {
    /// Spawn the shard workers over `store`'s snapshots.
    pub fn new(store: Arc<SnapshotStore>, opts: QueryOpts) -> Self {
        let shards = if opts.workers == 0 {
            pool::default_workers()
        } else {
            opts.workers
        };
        let inner = Arc::new(Engine {
            store,
            shards: (0..shards).map(|_| Shard::new()).collect(),
            admission: opts.admission,
            recorder: opts.recorder,
        });
        let workers = (0..shards)
            .map(|shard| {
                let engine = inner.clone();
                let batch = opts.batch.max(1);
                std::thread::Builder::new()
                    .name(format!("serve-q{shard}"))
                    .spawn(move || engine.worker(shard, batch))
                    .expect("spawn shard worker")
            })
            .collect();
        QueryEngine { inner, workers }
    }

    /// Worker / shard count.
    pub fn workers(&self) -> usize {
        self.inner.shards.len()
    }

    /// Submit a query; the ticket blocks until a shard worker answers.
    pub fn submit(&self, query: PathQuery) -> Result<Ticket, ServeError> {
        let (guard, cell) = self.inner.submit(query)?;
        Ok(Ticket { cell, guard })
    }

    /// Submit and wait — the closed-loop client call.
    pub fn query(&self, query: PathQuery) -> Result<PathAnswer, ServeError> {
        self.submit(query)?.wait()
    }

    /// Submit a whole batch, then collect every answer, in order.
    pub fn query_batch(&self, queries: &[PathQuery]) -> Vec<Result<PathAnswer, ServeError>> {
        let tickets: Vec<Result<Ticket, ServeError>> =
            queries.iter().map(|&q| self.submit(q)).collect();
        tickets
            .into_iter()
            .map(|t| match t {
                Ok(ticket) => ticket.wait(),
                Err(e) => Err(e),
            })
            .collect()
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        for shard in &self.inner.shards {
            shard.state.lock().unwrap().closed = true;
            shard.work.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Workers drain their queues before exiting, so this is empty
        // unless a submit raced the close; fail those waiters — the
        // workers are gone, nobody else will.
        for shard in &self.inner.shards {
            let leftovers: Vec<Arc<AnswerCell>> = {
                let mut st = shard.state.lock().unwrap();
                st.queue.clear();
                st.pending.drain().map(|(_, cell)| cell).collect()
            };
            for cell in leftovers {
                cell.fulfill(Err(ServeError::ShuttingDown));
            }
        }
    }
}

impl Engine {
    fn shard_of(key: Key) -> usize {
        // Fibonacci mix; shards are a small count, spread the pairs.
        let h = (u64::from(key.0) << 32 | u64::from(key.1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 33) as usize
    }

    fn submit(&self, query: PathQuery) -> Result<(BudgetGuard, Arc<AnswerCell>), ServeError> {
        let rec = &*self.recorder;
        let budget = self.admission.budget(query.class);
        let guard = budget.start();
        // Admission: is the serving view within this class's size cap?
        if let Err(e) = guard.admit(&self.store.read().net) {
            rec.add(counters::QUERIES_REJECTED, 1);
            return Err(ServeError::Budget(e));
        }
        let key: Key = (query.src.0, query.dst.0);
        let shard = &self.shards[Self::shard_of(key) % self.shards.len()];
        let mut st = shard.state.lock().unwrap();
        if st.closed {
            return Err(ServeError::ShuttingDown);
        }
        if let Some(cell) = st.pending.get(&key) {
            // Coalesce: ride the in-flight computation for this key.
            cell.waiters.fetch_add(1, Ordering::Relaxed);
            let cell = cell.clone();
            drop(st);
            rec.add(counters::QUERIES_COALESCED, 1);
            return Ok((guard, cell));
        }
        if st.pending.len() >= self.admission.max_inflight {
            let inflight = st.pending.len();
            drop(st);
            rec.add(counters::QUERIES_REJECTED, 1);
            return Err(ServeError::Overloaded {
                inflight,
                limit: self.admission.max_inflight,
            });
        }
        let cell = AnswerCell::new();
        st.pending.insert(key, cell.clone());
        st.queue.push_back(key);
        let wake = st.parked;
        drop(st);
        if wake {
            shard.work.notify_one();
        }
        Ok((guard, cell))
    }

    fn worker(&self, shard: usize, batch: usize) {
        let rec = &*self.recorder;
        let shard = &self.shards[shard];
        let mut drained: Vec<(Key, Arc<AnswerCell>)> = Vec::with_capacity(batch);
        loop {
            {
                let mut st = shard.state.lock().unwrap();
                loop {
                    if drained.len() >= batch {
                        break;
                    }
                    if let Some(key) = st.queue.pop_front() {
                        // Unlinking the cell here (under the shard
                        // lock) freezes its waiter count: later
                        // duplicates start a fresh entry.
                        if let Some(cell) = st.pending.remove(&key) {
                            drained.push((key, cell));
                        }
                        continue;
                    }
                    if !drained.is_empty() || st.closed {
                        break;
                    }
                    st.parked = true;
                    st = shard.work.wait(st).unwrap();
                    st.parked = false;
                }
                if drained.is_empty() {
                    return; // closed and fully drained
                }
            }
            // One snapshot serves the whole batch: consistent answers,
            // one lock-free read amortized over every query drained.
            let snap = self.store.read();
            let keys = drained.len();
            let mut served = 0u64;
            telemetry::timed(rec, phases::SERVE_BATCH, || {
                for (key, cell) in drained.drain(..) {
                    let answer = snap.answer(NodeId(key.0), NodeId(key.1));
                    served += cell.waiters.load(Ordering::Relaxed) as u64;
                    cell.fulfill(answer);
                }
            });
            if rec.enabled() {
                rec.add(counters::QUERIES_SERVED, served);
                rec.observe(hists::SERVE_BATCH_SIZE, keys as u64);
                if snap.epoch < self.store.epoch() {
                    // An epoch swap landed mid-batch; these answers are
                    // one epoch behind — consistent, just not newest.
                    rec.add(counters::STALE_READS, served);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsssp_core::{DfSssp, RoutingEngine};
    use fabric::topo;
    use std::time::Duration;

    fn engine_over(net: &fabric::Network, opts: QueryOpts) -> (Arc<SnapshotStore>, QueryEngine) {
        let routes = DfSssp::new().route(net).unwrap();
        let store = SnapshotStore::open(net.clone(), routes, None).unwrap();
        let engine = QueryEngine::new(store.clone(), opts);
        (store, engine)
    }

    #[test]
    fn answers_match_direct_table_walks() {
        let net = topo::torus(&[3, 3], 1);
        let (store, engine) = engine_over(&net, QueryOpts::default());
        let snap = store.read();
        for &src in net.terminals() {
            for &dst in net.terminals() {
                if src == dst {
                    continue;
                }
                let a = engine.query(PathQuery::new(src, dst)).unwrap();
                assert_eq!(a.epoch, 0);
                assert_eq!(a.hops, snap.routes.path_channels(&net, src, dst).unwrap());
                let (st, dt) = (
                    net.terminal_index(src).unwrap(),
                    net.terminal_index(dst).unwrap(),
                );
                assert_eq!(a.vl, snap.routes.layer(st, dt));
            }
        }
    }

    #[test]
    fn batch_interface_answers_in_order() {
        let net = topo::kary_ntree(4, 2);
        let (_, engine) = engine_over(&net, QueryOpts::default());
        let ts = net.terminals();
        let queries: Vec<PathQuery> = (1..ts.len())
            .map(|i| PathQuery::new(ts[0], ts[i]))
            .collect();
        let answers = engine.query_batch(&queries);
        assert_eq!(answers.len(), queries.len());
        for a in answers {
            let a = a.unwrap();
            assert!(!a.hops.is_empty());
        }
    }

    #[test]
    fn duplicate_queries_coalesce() {
        let net = topo::torus(&[3, 3], 1);
        // std Arc: RecorderHandle is telemetry's alias, outside the shim.
        let collector = std::sync::Arc::new(telemetry::Collector::new());
        let opts = QueryOpts {
            recorder: collector.clone(),
            workers: 1,
            ..QueryOpts::default()
        };
        let (_, engine) = engine_over(&net, opts);
        let (a, b) = (net.terminals()[0], net.terminals()[1]);
        // Saturate one key from several client threads; at least some
        // must coalesce onto in-flight computations.
        std::thread::scope(|s| {
            for _ in 0..8 {
                let engine = &engine;
                s.spawn(move || {
                    for _ in 0..200 {
                        engine.query(PathQuery::new(a, b)).unwrap();
                    }
                });
            }
        });
        let snap = collector.snapshot();
        assert_eq!(
            snap.counters["queries_served"],
            8 * 200,
            "every query answered exactly once"
        );
        assert!(
            snap.counters.get("queries_coalesced").copied().unwrap_or(0) > 0,
            "a hot pair under concurrent load must coalesce"
        );
        assert!(snap.histograms.contains_key("serve_batch_size"));
    }

    #[test]
    fn bad_queries_are_typed_errors() {
        let net = topo::ring(4, 1);
        let (_, engine) = engine_over(&net, QueryOpts::default());
        let t = net.terminals()[0];
        assert!(matches!(
            engine.query(PathQuery::new(t, t)),
            Err(ServeError::BadQuery(_))
        ));
        let sw = net.switches()[0];
        assert!(matches!(
            engine.query(PathQuery::new(sw, t)),
            Err(ServeError::Quarantined(_))
        ));
    }

    #[test]
    fn admission_budget_rejects_oversized_views() {
        let net = topo::torus(&[4, 4], 1);
        let opts = QueryOpts {
            admission: Admission {
                // The torus view has 32 nodes; admit at most 8.
                interactive: Budget::new().max_nodes(8),
                ..Admission::default()
            },
            ..QueryOpts::default()
        };
        let (_, engine) = engine_over(&net, opts);
        let (a, b) = (net.terminals()[0], net.terminals()[1]);
        match engine.query(PathQuery::new(a, b)) {
            Err(ServeError::Budget(RouteError::BudgetExceeded { resource, .. })) => {
                assert_eq!(resource, "nodes")
            }
            other => panic!("expected budget rejection, got {other:?}"),
        }
        // Bulk class is not configured: it still flows.
        let bulk = PathQuery {
            class: QueryClass::Bulk,
            ..PathQuery::new(a, b)
        };
        assert!(engine.query(bulk).is_ok());
    }

    #[test]
    fn expired_deadline_surfaces_as_budget_trip() {
        let net = topo::ring(4, 1);
        let opts = QueryOpts {
            admission: Admission {
                interactive: Budget::new().deadline(Duration::ZERO),
                ..Admission::default()
            },
            ..QueryOpts::default()
        };
        let (_, engine) = engine_over(&net, opts);
        let (a, b) = (net.terminals()[0], net.terminals()[1]);
        match engine.query(PathQuery::new(a, b)) {
            Err(ServeError::Budget(RouteError::BudgetExceeded { resource, .. })) => {
                assert_eq!(resource, "deadline_ms")
            }
            other => panic!("expected deadline trip, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_is_clean_under_load() {
        let net = topo::kary_ntree(4, 2);
        let (_, engine) = engine_over(&net, QueryOpts::default());
        let ts = net.terminals().to_vec();
        std::thread::scope(|s| {
            for off in 1..4 {
                let engine = &engine;
                let ts = &ts;
                s.spawn(move || {
                    for i in 0..500 {
                        let q = PathQuery::new(ts[i % ts.len()], ts[(i + off) % ts.len()]);
                        if q.src != q.dst {
                            let _ = engine.query(q);
                        }
                    }
                });
            }
        });
        drop(engine); // joins workers; must not hang or panic
    }
}
