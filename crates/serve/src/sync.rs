//! Synchronisation shim: the crate's concurrent cores ([`crate::swap`],
//! [`crate::query`], [`crate::pool`], [`crate::snapshot`]) import their
//! primitives from here instead of `std` directly.
//!
//! * Default build: straight re-exports of `std::sync` / `std::thread` /
//!   `std::hint` — zero cost, identical semantics.
//! * `--features loom-tests`: re-exports of the [`weave`] model checker's
//!   primitives. Outside a `weave::model` run those pass through to `std`,
//!   so the crate's ordinary tests still behave normally; inside a model
//!   every operation becomes an exhaustively explored scheduling point.
//!
//! The module is public so integration tests (e.g. `tests/stress.rs`) can
//! name the same `Arc` type the crate's public signatures use under either
//! configuration.

#[cfg(feature = "loom-tests")]
pub use weave::{
    hint::spin_loop,
    sync::{atomic, Arc, Condvar, Mutex, MutexGuard},
    thread::yield_now,
};

#[cfg(not(feature = "loom-tests"))]
pub use std::{
    hint::spin_loop,
    sync::{atomic, Arc, Condvar, Mutex, MutexGuard},
    thread::yield_now,
};
