//! Exhaustive interleaving models for the crate's concurrent cores,
//! checked with [`weave`] (compiled only under `--features loom-tests`).
//!
//! Three protocols are modeled over the *production types* — the same
//! code paths readers and writers execute in a running server, compiled
//! against the model checker through the [`crate::sync`] shim:
//!
//! 1. [`Swap`]'s slot-ring publish/read protocol (reader entry vs. slot
//!    recycling, retired-slot drain, the raw-`Arc` round trip);
//! 2. [`AnswerCell`]'s in-flight coalescing (exactly one fulfiller, every
//!    sleeper woken, first-write-wins stability);
//! 3. the shard worker's parked/wake-elision handshake and the pool
//!    queue's park/close protocol (no lost wakeup, clean shutdown).
//!
//! Each protocol is accompanied by *mutants*: minimally broken variants
//! (a dropped reader-count decrement, a drop-before-drain, an elided
//! notify) that the checker must refute. Those tests pin the checker's
//! power — if a refactor ever weakens the models, the mutants fail first.
//!
//! What weave does **not** cover — weaker-than-SeqCst orderings and raw
//! pointer provenance — is covered by the Miri and TSan CI jobs; see
//! DESIGN.md §13 for the full division of labour.

use crate::pool::ShardedQueue;
use crate::query::{AnswerCell, Key, QueryClass, QueueEntry, ServeError, Shard};
use crate::swap::Swap;
use crate::sync::atomic::{AtomicPtr, AtomicUsize, Ordering::SeqCst};
use crate::sync::{Arc, Mutex};
use std::time::Duration;
use weave::{thread, Builder};

/// Full-DFS builder for 2-thread models (trees stay small).
fn exhaustive() -> Builder {
    Builder::default()
}

/// Preemption-bounded builder for 3-thread models. Bound 3 keeps the
/// tree well under a second while covering every schedule that needs at
/// most three forced context switches — the CHESS result: almost all
/// concurrency bugs manifest within two.
fn bounded() -> Builder {
    Builder {
        preemption_bound: Some(3),
        ..Builder::default()
    }
}

// ---------------------------------------------------------------------
// 1. Swap slot-ring protocol
// ---------------------------------------------------------------------

#[test]
fn swap_reader_vs_recycling_writer() {
    // RING is 2 under this feature, so the second publish recycles the
    // slot the reader may still be inside: the exact race the drain
    // protocol exists for. weave's tracked Arc turns any
    // use-after-free, double-free or leak into a model failure.
    let report = bounded()
        .check(|| {
            let cell = Arc::new(Swap::new(Arc::new(0usize)));
            let c2 = Arc::clone(&cell);
            let reader = thread::spawn(move || *c2.read());
            cell.publish(Arc::new(1));
            cell.publish(Arc::new(2));
            let seen = reader.join().unwrap();
            assert!(seen <= 2, "reader saw unpublished value {seen}");
        })
        .expect("Swap reader/recycle protocol");
    assert!(report.executions > 1);
}

#[test]
fn swap_reader_observes_monotonic_generations() {
    // Before the read-side `current` re-check this property was FALSE:
    // the checker produced a schedule where the reader entered a slot
    // mid-recycle, grabbed the *newer* value before `current` was
    // redirected, and then read an older one. The re-check in
    // `Swap::read` is what makes this test pass.
    let report = bounded()
        .check(|| {
            let cell = Arc::new(Swap::new(Arc::new(0usize)));
            let c2 = Arc::clone(&cell);
            let reader = thread::spawn(move || {
                let first = *c2.read();
                let second = *c2.read();
                (first, second)
            });
            cell.publish(Arc::new(1));
            cell.publish(Arc::new(2));
            let (first, second) = reader.join().unwrap();
            assert!(
                second >= first,
                "reads went backwards: {first} then {second}"
            );
        })
        .expect("Swap monotonic reads");
    assert!(report.executions > 1);
}

#[test]
fn swap_two_readers_one_recycling_writer() {
    bounded()
        .check(|| {
            let cell = Arc::new(Swap::new(Arc::new(0usize)));
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&cell);
                    thread::spawn(move || *c.read())
                })
                .collect();
            cell.publish(Arc::new(1));
            cell.publish(Arc::new(2));
            for r in readers {
                assert!(r.join().unwrap() <= 2);
            }
        })
        .expect("Swap with two concurrent readers");
}

#[test]
fn swap_concurrent_publishers_serialize() {
    bounded()
        .check(|| {
            let cell = Arc::new(Swap::new(Arc::new(0usize)));
            let c2 = Arc::clone(&cell);
            let other = thread::spawn(move || {
                c2.publish(Arc::new(1));
            });
            cell.publish(Arc::new(2));
            other.join().unwrap();
            assert_eq!(cell.generation(), 2);
            let last = *cell.read();
            assert!(last == 1 || last == 2);
        })
        .expect("Swap publisher serialization");
}

// ---------------------------------------------------------------------
// Swap mutants: a 2-slot replica of the exact protocol with seeded
// bugs. `Faithful` re-derives the protocol to prove the replica itself
// is sound; each fault then differs in precisely one line.
// ---------------------------------------------------------------------

mod mini_swap {
    use super::*;
    use std::ptr;

    pub const FAITHFUL: u8 = 0;
    /// `read` forgets to decrement the slot's reader count.
    pub const NO_DECREMENT: u8 = 1;
    /// `publish` drops the old value *before* draining readers.
    pub const DROP_BEFORE_DRAIN: u8 = 2;

    pub struct MiniSwap<const FAULT: u8> {
        current: AtomicUsize,
        readers: [AtomicUsize; 2],
        ptrs: [AtomicPtr<usize>; 2],
        writer: Mutex<usize>,
    }

    impl<const FAULT: u8> MiniSwap<FAULT> {
        pub fn new(initial: Arc<usize>) -> Self {
            let s = MiniSwap {
                current: AtomicUsize::new(0),
                readers: [AtomicUsize::new(0), AtomicUsize::new(0)],
                ptrs: [
                    AtomicPtr::new(ptr::null_mut()),
                    AtomicPtr::new(ptr::null_mut()),
                ],
                writer: Mutex::new(0),
            };
            s.ptrs[0].store(Arc::into_raw(initial) as *mut usize, SeqCst);
            s
        }

        pub fn read(&self) -> Arc<usize> {
            loop {
                let gen = self.current.load(SeqCst);
                let i = gen % 2;
                self.readers[i].fetch_add(1, SeqCst);
                let p = self.ptrs[i].load(SeqCst);
                if !p.is_null() {
                    // SAFETY(model): replica of `Swap::read`'s licensed
                    // round trip; the faults under test break exactly the
                    // invariants that license it, and weave catches that.
                    let arc = unsafe {
                        Arc::increment_strong_count(p);
                        Arc::from_raw(p)
                    };
                    if FAULT != NO_DECREMENT {
                        self.readers[i].fetch_sub(1, SeqCst);
                    }
                    if self.current.load(SeqCst) == gen {
                        return arc;
                    }
                    drop(arc);
                } else {
                    self.readers[i].fetch_sub(1, SeqCst);
                }
                crate::sync::spin_loop();
            }
        }

        pub fn publish(&self, value: Arc<usize>) -> usize {
            let mut generation = self.writer.lock().unwrap();
            *generation += 1;
            let i = *generation % 2;
            let old = self.ptrs[i].swap(ptr::null_mut(), SeqCst);
            if FAULT == DROP_BEFORE_DRAIN {
                if !old.is_null() {
                    // SAFETY(model): the seeded bug — releasing before the
                    // drain, exactly what the real protocol forbids.
                    unsafe { drop(Arc::from_raw(old)) };
                }
            }
            while self.readers[i].load(SeqCst) != 0 {
                crate::sync::yield_now();
            }
            if FAULT != DROP_BEFORE_DRAIN {
                if !old.is_null() {
                    // SAFETY(model): replica of the real post-drain drop.
                    unsafe { drop(Arc::from_raw(old)) };
                }
            }
            self.ptrs[i].store(Arc::into_raw(value) as *mut usize, SeqCst);
            self.current.store(*generation, SeqCst);
            *generation
        }
    }

    impl<const FAULT: u8> Drop for MiniSwap<FAULT> {
        fn drop(&mut self) {
            for p in &self.ptrs {
                let p = p.swap(ptr::null_mut(), SeqCst);
                if !p.is_null() {
                    // SAFETY(model): replica of `Swap`'s `&mut self` drop.
                    unsafe { drop(Arc::from_raw(p)) };
                }
            }
        }
    }

    // SAFETY(model): same contract as the real `Swap`.
    unsafe impl<const FAULT: u8> Send for MiniSwap<FAULT> {}
    // SAFETY(model): same contract as the real `Swap`.
    unsafe impl<const FAULT: u8> Sync for MiniSwap<FAULT> {}
}

fn run_mini_swap<const FAULT: u8>() -> Result<weave::Report, weave::Failure> {
    use mini_swap::MiniSwap;
    bounded().check(|| {
        let cell = Arc::new(MiniSwap::<FAULT>::new(Arc::new(0usize)));
        let c2 = Arc::clone(&cell);
        let reader = thread::spawn(move || *c2.read());
        cell.publish(Arc::new(1));
        cell.publish(Arc::new(2));
        assert!(reader.join().unwrap() <= 2);
    })
}

#[test]
fn mini_swap_faithful_replica_passes() {
    // The replica must be exactly as sound as the real Swap, otherwise
    // the mutant failures below prove nothing.
    run_mini_swap::<{ mini_swap::FAITHFUL }>().expect("faithful replica");
}

#[test]
fn mutant_dropped_reader_decrement_is_refuted() {
    let failure = run_mini_swap::<{ mini_swap::NO_DECREMENT }>()
        .expect_err("a never-drained reader count must hang the writer");
    assert!(
        failure.message.contains("livelock") || failure.message.contains("deadlock"),
        "{failure}"
    );
}

#[test]
fn mutant_drop_before_drain_is_refuted() {
    let failure = run_mini_swap::<{ mini_swap::DROP_BEFORE_DRAIN }>()
        .expect_err("dropping before the drain must be a use-after-free");
    assert!(
        failure.message.contains("freed allocation") || failure.message.contains("leaked"),
        "{failure}"
    );
}

// ---------------------------------------------------------------------
// 2. AnswerCell coalescing
// ---------------------------------------------------------------------

#[test]
fn answer_cell_every_sleeper_wakes() {
    bounded()
        .check(|| {
            let cell = AnswerCell::new();
            let waiters: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&cell);
                    thread::spawn(move || c.wait())
                })
                .collect();
            cell.fulfill(Err(ServeError::ShuttingDown));
            for w in waiters {
                assert!(matches!(w.join().unwrap(), Err(ServeError::ShuttingDown)));
            }
        })
        .expect("every coalesced waiter must observe the answer");
}

#[test]
fn answer_cell_first_fulfiller_wins_and_sticks() {
    bounded()
        .check(|| {
            let cell = AnswerCell::new();
            let c2 = Arc::clone(&cell);
            let racer = thread::spawn(move || {
                c2.fulfill(Err(ServeError::ShuttingDown));
            });
            cell.fulfill(Err(ServeError::Overloaded {
                retry_after: Duration::from_millis(1),
            }));
            racer.join().unwrap();
            // Whichever fulfiller won, the cell must have settled: two
            // waits observe the same answer.
            let first = cell.wait();
            let second = cell.wait();
            let same = matches!(
                (&first, &second),
                (Err(ServeError::ShuttingDown), Err(ServeError::ShuttingDown))
                    | (
                        Err(ServeError::Overloaded { .. }),
                        Err(ServeError::Overloaded { .. })
                    )
            );
            assert!(same, "cell changed its answer: {first:?} then {second:?}");
        })
        .expect("exactly one fulfiller must win, permanently");
}

#[test]
fn mutant_elided_notify_is_refuted() {
    // The seeded bug: fulfill sets the answer but skips `notify_all`
    // even though sleepers are parked — the wake-elision gone wrong.
    let failure = exhaustive()
        .check(|| {
            let cell = AnswerCell::new();
            let c = Arc::clone(&cell);
            let waiter = thread::spawn(move || c.wait());
            {
                let mut st = cell.state.lock().unwrap();
                if st.answer.is_none() {
                    st.answer = Some(Err(ServeError::ShuttingDown));
                    // bug: no `cell.ready.notify_all()`
                }
            }
            let _ = waiter.join().unwrap();
        })
        .expect_err("a sleeper must be lost on some schedule");
    assert!(failure.message.contains("deadlock"), "{failure}");
}

// ---------------------------------------------------------------------
// 3. Parked/wake-elision handshake (shard worker) and pool queue
// ---------------------------------------------------------------------

/// The worker side of the handshake, verbatim from `Engine::worker`'s
/// park loop: drain the deficit-weighted queues, else mark parked and
/// wait. Equal quanta here — the weights are a fairness property, the
/// model checks the wakeup protocol.
fn park_until_work(shard: &Shard) -> Option<Key> {
    let mut st = shard.state.lock().unwrap();
    loop {
        if let Some(entry) = st.pop_next(&[1, 1]) {
            return Some(entry.key);
        }
        if st.closed {
            return None;
        }
        st.parked = true;
        st = shard.work.wait(st).unwrap();
        st.parked = false;
    }
}

/// The submitter side, verbatim from `QueryEngine::submit`: enqueue
/// into the class queue, read `parked` under the lock, wake outside it
/// only when needed.
fn submit_key_class(shard: &Shard, key: Key, class: QueryClass) {
    let mut st = shard.state.lock().unwrap();
    st.queues[class.index()].push_back(QueueEntry::immediate(key));
    let wake = st.parked;
    drop(st);
    if wake {
        shard.work.notify_one();
    }
}

fn submit_key(shard: &Shard, key: Key) {
    submit_key_class(shard, key, QueryClass::Interactive);
}

#[test]
fn wake_elision_handshake_never_loses_work() {
    let report = exhaustive()
        .check(|| {
            let shard = Arc::new(Shard::new());
            let s2 = Arc::clone(&shard);
            let worker = thread::spawn(move || park_until_work(&s2));
            submit_key(&shard, (1, 2));
            assert_eq!(worker.join().unwrap(), Some((1, 2)));
        })
        .expect("the parked flag must never elide a needed wakeup");
    assert!(report.complete);
}

#[test]
fn wake_elision_handshake_two_submitters() {
    bounded()
        .check(|| {
            let shard = Arc::new(Shard::new());
            let s2 = Arc::clone(&shard);
            let worker = thread::spawn(move || {
                let first = park_until_work(&s2);
                let second = park_until_work(&s2);
                (first, second)
            });
            let s3 = Arc::clone(&shard);
            let other = thread::spawn(move || submit_key(&s3, (3, 4)));
            submit_key(&shard, (1, 2));
            other.join().unwrap();
            let (first, second) = worker.join().unwrap();
            let mut got = [first.unwrap(), second.unwrap()];
            got.sort_unstable();
            assert_eq!(got, [(1, 2), (3, 4)]);
        })
        .expect("two racing submitters, one parked worker");
}

#[test]
fn shutdown_wakes_parked_worker() {
    exhaustive()
        .check(|| {
            let shard = Arc::new(Shard::new());
            let s2 = Arc::clone(&shard);
            let worker = thread::spawn(move || park_until_work(&s2));
            // Verbatim from `Drop for QueryEngine`: set closed, then wake
            // unconditionally.
            {
                let mut st = shard.state.lock().unwrap();
                st.closed = true;
            }
            shard.work.notify_all();
            assert_eq!(worker.join().unwrap(), None);
        })
        .expect("close must always rouse a parked worker");
}

#[test]
fn mutant_unconditional_elision_is_refuted() {
    // Submitter that never wakes anyone: the handshake's reason to read
    // `parked` at all. Must deadlock whenever the worker parked first.
    let failure = exhaustive()
        .check(|| {
            let shard = Arc::new(Shard::new());
            let s2 = Arc::clone(&shard);
            let worker = thread::spawn(move || park_until_work(&s2));
            {
                let mut st = shard.state.lock().unwrap();
                st.queues[0].push_back(QueueEntry::immediate((1, 2)));
                // bug: `st.parked` ignored, notify elided unconditionally
            }
            assert_eq!(worker.join().unwrap(), Some((1, 2)));
        })
        .expect_err("eliding every wakeup must strand a parked worker");
    assert!(failure.message.contains("deadlock"), "{failure}");
}

// ---------------------------------------------------------------------
// 4. Fair-admission gate: the DWRR pop under the same parked/wake
// handshake. The risk the models pin down is a *lost wakeup through the
// scheduler*: a submitter refills a class's deficit (by making its
// queue non-empty) while the worker is parked or mid-round on another
// class, and the worker must still find the work.
// ---------------------------------------------------------------------

#[test]
fn dwrr_cross_class_submit_wakes_parked_worker() {
    // Submissions race into *different* class queues; one parked
    // worker must retrieve both regardless of where the cursor and the
    // deficits are when each submitter lands.
    bounded()
        .check(|| {
            let shard = Arc::new(Shard::new());
            let s2 = Arc::clone(&shard);
            let worker = thread::spawn(move || {
                let first = park_until_work(&s2);
                let second = park_until_work(&s2);
                (first, second)
            });
            let s3 = Arc::clone(&shard);
            let bulk = thread::spawn(move || submit_key_class(&s3, (3, 4), QueryClass::Bulk));
            submit_key_class(&shard, (1, 2), QueryClass::Interactive);
            bulk.join().unwrap();
            let (first, second) = worker.join().unwrap();
            let mut got = [first.unwrap(), second.unwrap()];
            got.sort_unstable();
            assert_eq!(got, [(1, 2), (3, 4)]);
        })
        .expect("a submit to either class must reach a parked worker");
}

#[test]
fn dwrr_stale_credit_never_blocks_the_other_class() {
    // The refill race: the bulk class holds leftover deficit from an
    // earlier round but its queue is empty, and the cursor is parked on
    // it. A submit to the *other* class must still be found — pop_next
    // has to retire the stale credit and scan on, on every schedule.
    exhaustive()
        .check(|| {
            let shard = Arc::new(Shard::new());
            {
                let mut st = shard.state.lock().unwrap();
                st.cursor = QueryClass::Bulk.index();
                st.deficit[QueryClass::Bulk.index()] = 5; // stale credit
            }
            let s2 = Arc::clone(&shard);
            let worker = thread::spawn(move || park_until_work(&s2));
            submit_key_class(&shard, (1, 2), QueryClass::Interactive);
            assert_eq!(worker.join().unwrap(), Some((1, 2)));
        })
        .expect("stale deficit on an empty class must not strand work");
}

#[test]
fn mutant_cursor_only_pop_is_refuted() {
    // The seeded bug: a pop that only ever looks at the cursor's class
    // and parks when that queue is empty. Work arriving on the other
    // class refills its deficit, the wakeup fires — and the worker
    // re-checks the wrong queue and parks again, forever.
    fn park_cursor_only(shard: &Shard) -> Option<Key> {
        let mut st = shard.state.lock().unwrap();
        loop {
            let c = st.cursor;
            if let Some(entry) = st.queues[c].pop_front() {
                return Some(entry.key);
            }
            if st.closed {
                return None;
            }
            st.parked = true;
            st = shard.work.wait(st).unwrap();
            st.parked = false;
        }
    }
    let failure = exhaustive()
        .check(|| {
            let shard = Arc::new(Shard::new());
            let s2 = Arc::clone(&shard);
            let worker = thread::spawn(move || park_cursor_only(&s2));
            // Cursor starts at Interactive; the work lands on Bulk.
            submit_key_class(&shard, (1, 2), QueryClass::Bulk);
            assert_eq!(worker.join().unwrap(), Some((1, 2)));
        })
        .expect_err("ignoring non-cursor classes must strand their work");
    assert!(failure.message.contains("deadlock"), "{failure}");
}

#[test]
fn pool_queue_push_wakes_blocked_consumer() {
    exhaustive()
        .check(|| {
            let q = Arc::new(ShardedQueue::<u32>::new(1));
            let q2 = Arc::clone(&q);
            let consumer = thread::spawn(move || {
                let mut out = Vec::new();
                let live = q2.pop_batch(0, 4, &mut out);
                (live, out)
            });
            q.push(0, 7).unwrap();
            let (live, out) = consumer.join().unwrap();
            assert!(live);
            assert_eq!(out, vec![7]);
        })
        .expect("pool queue push/pop handshake");
}

#[test]
fn pool_queue_close_releases_blocked_consumer() {
    exhaustive()
        .check(|| {
            let q = Arc::new(ShardedQueue::<u32>::new(1));
            let q2 = Arc::clone(&q);
            let consumer = thread::spawn(move || {
                let mut out = Vec::new();
                q2.pop_batch(0, 4, &mut out)
            });
            q.close();
            assert!(!consumer.join().unwrap(), "closed+empty must report false");
        })
        .expect("pool queue close handshake");
}
