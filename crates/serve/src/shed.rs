//! The adaptive shed controller: AIMD on admitted rate, keyed off a
//! queue-delay EWMA.
//!
//! Queue caps alone shed load *late* — by the time a queue is full,
//! every query already admitted is slow. The [`ShedController`] sheds
//! *early* instead: shard workers report the worst in-queue wait of
//! each drained batch, the controller folds those into an exponentially
//! weighted moving average, and an AIMD loop (the TCP congestion shape:
//! additive increase, multiplicative decrease) servos the fraction of
//! best-effort submissions admitted:
//!
//! * delay EWMA above [`ShedConfig::target_delay`] → halve the admitted
//!   rate (a queue-cap rejection is treated the same way: both mean the
//!   backlog is ahead of the servo);
//! * delay EWMA comfortably below target → creep the admitted rate back
//!   up by [`ShedConfig::step_permille`] per tick.
//!
//! Two properties the overload tests pin down:
//!
//! * **The shed rate never reaches 100%.** The admitted rate is floored
//!   at [`ShedConfig::floor_permille`], so even a reroute storm on top
//!   of a flash crowd degrades answers, never availability.
//! * **Only sheddable classes are thinned.** The controller is a gate
//!   consulted per [`crate::query::ClassPolicy`]; latency-sensitive
//!   classes bypass it entirely and are protected by their
//!   deficit-weighted queue share instead.
//!
//! Admission decisions are deterministic: a submission counter is
//! compared against the admitted permille, so a fixed query sequence
//! sheds the same queries at the same controller state — no wall-clock
//! randomness in what gets dropped.

use crate::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};
use telemetry::{hists, Recorder};

/// Tunables for the [`ShedController`].
#[derive(Clone, Copy, Debug)]
pub struct ShedConfig {
    /// Queue-delay EWMA the controller servos toward. Above it the
    /// admitted rate halves; below half of it the rate creeps back up.
    pub target_delay: Duration,
    /// Lower bound on the admitted rate, in permille of offered
    /// best-effort load. Must be ≥ 1 so shedding never reaches 100%.
    pub floor_permille: u32,
    /// Additive recovery per tick, in permille.
    pub step_permille: u32,
    /// Minimum spacing between AIMD adjustments. Decoupling the servo
    /// from the batch rate keeps one congested burst from collapsing
    /// the rate straight to the floor.
    pub tick: Duration,
}

impl Default for ShedConfig {
    fn default() -> Self {
        ShedConfig {
            target_delay: Duration::from_millis(2),
            floor_permille: 50,
            step_permille: 25,
            tick: Duration::from_millis(10),
        }
    }
}

/// The shared controller; one per [`crate::QueryEngine`], consulted by
/// every shard. See the module docs for the control law.
#[derive(Debug)]
pub struct ShedController {
    config: ShedConfig,
    /// Admitted best-effort rate, permille (1000 = admit everything).
    admitted: AtomicU32,
    /// Deepest shed ever reached; the floor proof the overload bench
    /// reports (must stay > 0).
    min_admitted: AtomicU32,
    /// Queue-delay EWMA, microseconds (alpha = 1/8).
    delay_ewma_us: AtomicU64,
    /// Microseconds-since-`start` of the last AIMD adjustment.
    last_tick_us: AtomicU64,
    /// Deterministic thinning counter for [`ShedController::admit`].
    seq: AtomicU64,
    start: Instant,
}

impl ShedController {
    /// A fresh controller admitting everything.
    pub fn new(config: ShedConfig) -> Self {
        let floor = config.floor_permille.clamp(1, 1000);
        ShedController {
            config: ShedConfig {
                floor_permille: floor,
                step_permille: config.step_permille.max(1),
                ..config
            },
            admitted: AtomicU32::new(1000),
            min_admitted: AtomicU32::new(1000),
            delay_ewma_us: AtomicU64::new(0),
            last_tick_us: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            start: Instant::now(),
        }
    }

    /// Gate one sheddable submission: `true` admits it. Deterministic
    /// thinning — submission `n` is admitted iff `n mod 1000` falls
    /// under the current admitted permille, so drops are spread evenly
    /// through the stream rather than bursted.
    pub fn admit(&self) -> bool {
        let admitted = self.admitted.load(Ordering::Relaxed);
        if admitted >= 1000 {
            return true;
        }
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        ((n % 1000) as u32) < admitted
    }

    /// Report the worst in-queue wait of one drained batch. Updates the
    /// EWMA and, at most once per [`ShedConfig::tick`], runs the AIMD
    /// adjustment.
    pub fn observe_queue_delay(&self, wait_us: u64, rec: &dyn Recorder) {
        // Lossy EWMA update: concurrent shards may overwrite each
        // other's fold, which only costs a sample — the servo reads a
        // smoothed signal either way.
        let old = self.delay_ewma_us.load(Ordering::Relaxed);
        let next = old - old / 8 + wait_us / 8;
        self.delay_ewma_us.store(next, Ordering::Relaxed);
        self.maybe_adjust(next, rec);
    }

    /// Report a queue-cap rejection: the backlog got ahead of the
    /// servo, so treat it as an over-target signal directly.
    pub fn on_queue_full(&self, rec: &dyn Recorder) {
        let over = self.config.target_delay.as_micros() as u64 + 1;
        let old = self.delay_ewma_us.load(Ordering::Relaxed);
        self.delay_ewma_us.store(old.max(over), Ordering::Relaxed);
        self.maybe_adjust(over.max(old), rec);
    }

    fn maybe_adjust(&self, ewma_us: u64, rec: &dyn Recorder) {
        let now_us = self.start.elapsed().as_micros() as u64;
        let last = self.last_tick_us.load(Ordering::Relaxed);
        let tick_us = self.config.tick.as_micros() as u64;
        if now_us.saturating_sub(last) < tick_us {
            return;
        }
        // One adjuster per tick: the CAS loser simply skips this round.
        if self
            .last_tick_us
            .compare_exchange(last, now_us, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let target_us = self.config.target_delay.as_micros() as u64;
        let admitted = self.admitted.load(Ordering::Relaxed);
        let next = if ewma_us > target_us {
            // Multiplicative decrease, floored: shed hard, never fully.
            (admitted / 2).max(self.config.floor_permille)
        } else if ewma_us < target_us / 2 {
            // Additive increase: creep back toward full admission.
            (admitted + self.config.step_permille).min(1000)
        } else {
            admitted
        };
        if next != admitted {
            self.admitted.store(next, Ordering::Relaxed);
            if next < self.min_admitted.load(Ordering::Relaxed) {
                self.min_admitted.store(next, Ordering::Relaxed);
            }
            if rec.enabled() {
                rec.observe(hists::ADMITTED_PERMILLE, u64::from(next));
            }
        }
    }

    /// How long a refused caller should back off before resubmitting:
    /// scales with the observed queue delay, never less than the servo
    /// target, never more than a second.
    pub fn retry_after(&self) -> Duration {
        let ewma = self.delay_ewma_us.load(Ordering::Relaxed);
        let floor = self.config.target_delay.as_micros() as u64;
        Duration::from_micros((ewma * 2).clamp(floor.max(1), 1_000_000))
    }

    /// Current admitted best-effort rate, permille.
    pub fn admitted_permille(&self) -> u32 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Deepest admitted rate ever reached (1000 when never shed). The
    /// floor guarantee in one number: this never returns 0.
    pub fn min_admitted_permille(&self) -> u32 {
        self.min_admitted.load(Ordering::Relaxed)
    }

    /// Whether the controller is currently thinning submissions.
    pub fn shedding(&self) -> bool {
        self.admitted.load(Ordering::Relaxed) < 1000
    }

    /// Current queue-delay EWMA, microseconds.
    pub fn queue_delay_ewma_us(&self) -> u64 {
        self.delay_ewma_us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::{Collector, Noop};

    fn tight() -> ShedConfig {
        ShedConfig {
            target_delay: Duration::from_micros(100),
            floor_permille: 50,
            step_permille: 25,
            tick: Duration::ZERO,
        }
    }

    #[test]
    fn over_target_delay_halves_the_admitted_rate() {
        let c = ShedController::new(tight());
        assert_eq!(c.admitted_permille(), 1000);
        // Pump the EWMA well over target; each report may adjust (tick
        // is zero) so a few reports walk the rate down multiplicatively.
        for _ in 0..3 {
            c.observe_queue_delay(100_000, &Noop);
        }
        assert!(c.shedding());
        assert!(c.admitted_permille() <= 500);
        assert_eq!(c.min_admitted_permille(), c.admitted_permille());
    }

    #[test]
    fn the_floor_holds_under_any_pressure() {
        let c = ShedController::new(tight());
        for _ in 0..64 {
            c.observe_queue_delay(1_000_000, &Noop);
            c.on_queue_full(&Noop);
        }
        assert_eq!(c.admitted_permille(), 50, "must stop at the floor");
        assert!(c.min_admitted_permille() > 0);
        // Even at the floor some submissions are admitted.
        let admitted = (0..1000).filter(|_| c.admit()).count();
        assert!(admitted > 0, "shed rate reached 100%");
    }

    #[test]
    fn quiet_delay_recovers_additively() {
        let c = ShedController::new(tight());
        for _ in 0..8 {
            c.observe_queue_delay(1_000_000, &Noop);
        }
        let shed_to = c.admitted_permille();
        assert_eq!(shed_to, 50);
        // Let the EWMA decay to quiet, then recover step by step.
        for _ in 0..200 {
            c.observe_queue_delay(0, &Noop);
        }
        assert_eq!(c.admitted_permille(), 1000, "full recovery");
        assert_eq!(c.min_admitted_permille(), shed_to, "deepest shed kept");
    }

    #[test]
    fn thinning_matches_the_admitted_permille() {
        let c = ShedController::new(ShedConfig {
            floor_permille: 250,
            ..tight()
        });
        for _ in 0..8 {
            c.observe_queue_delay(1_000_000, &Noop);
        }
        assert_eq!(c.admitted_permille(), 250);
        let admitted = (0..4000).filter(|_| c.admit()).count();
        assert_eq!(admitted, 1000, "deterministic 1-in-4 thinning");
    }

    #[test]
    fn retry_after_is_bounded_and_positive() {
        let c = ShedController::new(tight());
        assert!(c.retry_after() >= Duration::from_micros(100));
        for _ in 0..4 {
            c.observe_queue_delay(10_000_000, &Noop);
        }
        assert!(c.retry_after() <= Duration::from_secs(1));
    }

    #[test]
    fn adjustments_are_recorded() {
        let rec = Collector::new();
        let c = ShedController::new(tight());
        c.observe_queue_delay(1_000_000, &rec);
        let snap = rec.snapshot();
        assert!(snap.histograms.contains_key("admitted_permille"));
    }
}
