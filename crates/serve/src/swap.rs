//! The lock-free publish/read cell behind the snapshot store.
//!
//! [`Swap<T>`] holds one current `Arc<T>` and supports two operations:
//! readers take a clone of the current value ([`Swap::read`]), writers
//! replace it ([`Swap::publish`]). The requirements come straight from
//! the serving path:
//!
//! * **Readers never block and never see a torn value.** A query worker
//!   grabbing the current snapshot must cost a handful of atomic
//!   operations, no matter how many other readers are hammering the
//!   cell or whether a writer is mid-publish.
//! * **Writers wait, readers don't.** An epoch swap is the rare, slow
//!   side (it follows a full reroute plus a vet pass); it may briefly
//!   wait for straggling readers, the readers never wait for it.
//!
//! The implementation is a slot ring with per-slot reader counts:
//!
//! ```text
//!    current ──► slot[g % S]      (S = RING generations live at once)
//!    slot      = { readers: AtomicUsize, ptr: AtomicPtr<T> }
//! ```
//!
//! A reader enters the slot `current` points at by incrementing its
//! reader count, then loads the pointer and clones the `Arc` out of it,
//! and finally re-checks that `current` has not moved (retrying if it
//! has). A writer publishes generation `g+1` into slot `(g+1) % S` — the
//! slot least recently current — by swapping its pointer to null,
//! draining that slot's reader count to zero, dropping the retired
//! value, and only then installing the new one and redirecting
//! `current`.
//!
//! Why this is sound (all orderings are `SeqCst`, so every atomic
//! operation below sits in one total order):
//!
//! * A reader increments `readers` *before* loading `ptr`. If its load
//!   returned a non-null pointer, the load — and therefore the
//!   increment — precedes the writer's swap-to-null in the total
//!   order. The writer's subsequent drain loop must then observe the
//!   reader's increment, and keeps waiting until the reader has cloned
//!   the `Arc` (bumping the strong count) and decremented. The retired
//!   `Arc` is dropped strictly after every such clone completes, so the
//!   pointee is never freed under a reader.
//! * A reader that loads a null pointer (it raced the recycling of a
//!   slot that was current `S` generations ago) backs out and retries
//!   with a fresh `current`; it never dereferences anything.
//! * Stale readers can only inflate the count of a slot that stopped
//!   being current; new readers pile onto the *current* slot. The
//!   writer therefore drains a slot no reader is steered to anymore —
//!   with `RING` generations in flight, a reader would have to sleep
//!   through `RING - 1` full publishes (each a reroute plus a vet walk)
//!   between two adjacent atomic operations to delay a writer at all,
//!   and even then the writer only waits, it never corrupts.
//! * The final `current` re-check makes reads **linearizable**: a read
//!   returns only if `current` equals the generation it entered with,
//!   which pins a moment (that last load) at which the returned value
//!   *was* the current value. Publishers complete `current` before
//!   releasing the writer lock and `current` is the monotonically
//!   increasing generation itself (not a slot index), so the check
//!   cannot be fooled by wraparound. Without it, a reader stalled
//!   between choosing its slot and loading the pointer could return a
//!   *newer* value than `current` points at, and a subsequent read
//!   would then go backwards — an interleaving the `weave` model in
//!   `crate::models` finds in seconds (see DESIGN.md §13).
//!
//! The one `unsafe` surface is the `Arc::into_raw` / `from_raw` round
//! trip; the protocol above is what licenses it.

use crate::sync::atomic::{AtomicPtr, AtomicUsize, Ordering::SeqCst};
use crate::sync::{Arc, Mutex};
use std::ptr;

/// Generations that can be live at once. Publishing generation `g`
/// recycles the value of generation `g - RING + 1`.
#[cfg(not(feature = "loom-tests"))]
const RING: usize = 8;
/// Under the model checker the ring shrinks to the smallest size that
/// still recycles, so exhaustive exploration reaches the reader-vs-recycle
/// race within two publishes instead of eight. The protocol is
/// ring-size-independent; see `crate::models`.
#[cfg(feature = "loom-tests")]
const RING: usize = 2;

struct Slot<T> {
    /// Readers currently inside this slot (between enter and exit).
    readers: AtomicUsize,
    /// `Arc::into_raw` of the slot's value; null while recycling or
    /// never yet published.
    ptr: AtomicPtr<T>,
}

impl<T> Slot<T> {
    fn empty() -> Self {
        Slot {
            readers: AtomicUsize::new(0),
            ptr: AtomicPtr::new(ptr::null_mut()),
        }
    }
}

/// A lock-free current-value cell: wait-free-in-practice reads of an
/// `Arc<T>`, serialized writers. See the module docs for the protocol.
pub struct Swap<T> {
    /// Latest fully published generation; readers enter slot
    /// `current % RING`. Storing the generation rather than the slot
    /// index keeps the read-side re-check wraparound-proof.
    current: AtomicUsize,
    slots: Box<[Slot<T>]>,
    /// Serializes publishers and owns the generation counter.
    writer: Mutex<usize>,
}

impl<T> Swap<T> {
    /// A cell holding `initial` as generation 0.
    pub fn new(initial: Arc<T>) -> Self {
        let slots: Box<[Slot<T>]> = (0..RING).map(|_| Slot::empty()).collect();
        slots[0].ptr.store(Arc::into_raw(initial) as *mut T, SeqCst);
        Swap {
            current: AtomicUsize::new(0),
            slots,
            writer: Mutex::new(0),
        }
    }

    /// Clone the current value out of the cell. Lock-free: a handful of
    /// atomics, no mutex, no waiting on writers.
    pub fn read(&self) -> Arc<T> {
        loop {
            let gen = self.current.load(SeqCst);
            let slot = &self.slots[gen % RING];
            slot.readers.fetch_add(1, SeqCst);
            let p = slot.ptr.load(SeqCst);
            if !p.is_null() {
                // SAFETY: `p` came from `Arc::into_raw`. Our reader-count
                // increment is ordered before this non-null load, so the
                // writer recycling this slot (which nulls the pointer
                // *first*, then drains `readers` to zero, then drops)
                // cannot release the value before our decrement below —
                // by which point we hold our own strong reference.
                let arc = unsafe {
                    Arc::increment_strong_count(p);
                    Arc::from_raw(p)
                };
                slot.readers.fetch_sub(1, SeqCst);
                if self.current.load(SeqCst) == gen {
                    return arc;
                }
                // A publish completed while we were inside the slot, so
                // `arc` may be newer than what `current` now points at;
                // returning it would let a later read go backwards.
                // Drop it and retry against the fresh generation.
                drop(arc);
            } else {
                // Raced a recycle of a long-stale slot: back out, retry.
                slot.readers.fetch_sub(1, SeqCst);
            }
            crate::sync::spin_loop();
        }
    }

    /// Install `value` as the new current value, returning its
    /// generation. Publishers serialize; the call may briefly wait for
    /// readers that are still inside the slot being recycled (a slot
    /// that was last current `RING - 1` publishes ago).
    pub fn publish(&self, value: Arc<T>) -> usize {
        let mut gen = self.writer.lock().unwrap();
        *gen += 1;
        let slot = &self.slots[*gen % RING];
        let old = slot.ptr.swap(ptr::null_mut(), SeqCst);
        while slot.readers.load(SeqCst) != 0 {
            crate::sync::yield_now();
        }
        if !old.is_null() {
            // SAFETY: `old` came from `Arc::into_raw` at a previous
            // publish. The pointer was nulled above and the reader count
            // has drained: no reader can still produce a clone from it.
            unsafe { drop(Arc::from_raw(old)) };
        }
        slot.ptr.store(Arc::into_raw(value) as *mut T, SeqCst);
        self.current.store(*gen, SeqCst);
        *gen
    }

    /// Generations published so far (0 = only the initial value).
    pub fn generation(&self) -> usize {
        *self.writer.lock().unwrap()
    }
}

impl<T> Drop for Swap<T> {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            let p = slot.ptr.swap(ptr::null_mut(), SeqCst);
            if !p.is_null() {
                // SAFETY: `&mut self` — no readers or writers remain.
                unsafe { drop(Arc::from_raw(p)) };
            }
        }
    }
}

// SAFETY: the cell hands out `Arc<T>` clones across threads, which is
// exactly what `Arc` requires of `T`.
unsafe impl<T: Send + Sync> Send for Swap<T> {}
unsafe impl<T: Send + Sync> Sync for Swap<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn read_returns_latest_publish() {
        let cell = Swap::new(Arc::new(0u64));
        assert_eq!(*cell.read(), 0);
        for g in 1..=20u64 {
            assert_eq!(cell.publish(Arc::new(g)), g as usize);
            assert_eq!(*cell.read(), g);
        }
        assert_eq!(cell.generation(), 20);
    }

    #[test]
    fn every_value_dropped_exactly_once() {
        static DROPS: AtomicU64 = AtomicU64::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, SeqCst);
            }
        }
        {
            let cell = Swap::new(Arc::new(Counted));
            for _ in 0..100 {
                cell.publish(Arc::new(Counted));
            }
            let held = cell.read();
            drop(cell);
            // The ring retired all but the reader-held value.
            assert_eq!(DROPS.load(SeqCst), 100);
            drop(held);
        }
        assert_eq!(DROPS.load(SeqCst), 101);
    }

    #[test]
    fn concurrent_readers_see_monotonic_published_values() {
        const PUBLISHES: u64 = 2_000;
        let cell = Arc::new(Swap::new(Arc::new(0u64)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = cell.clone();
                s.spawn(move || {
                    let mut last = 0u64;
                    loop {
                        let v = *cell.read();
                        assert!(v >= last, "reads went backwards: {v} after {last}");
                        last = v;
                        if v == PUBLISHES {
                            break;
                        }
                    }
                });
            }
            for g in 1..=PUBLISHES {
                cell.publish(Arc::new(g));
            }
        });
        assert_eq!(*cell.read(), PUBLISHES);
    }

    #[test]
    fn concurrent_publishers_serialize() {
        let cell = Arc::new(Swap::new(Arc::new(0usize)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = cell.clone();
                s.spawn(move || {
                    for _ in 0..500 {
                        cell.publish(Arc::new(1));
                    }
                });
            }
        });
        assert_eq!(cell.generation(), 2_000);
    }
}
