//! Concurrent route serving: versioned snapshots, a batched query
//! engine, and the subnet-manager serving loop.
//!
//! Routing a fabric (the paper's subject) is the slow, occasional side
//! of the system; *answering* "how do I get from A to B right now" is
//! the fast, constant one. This crate is the fast side, built so the
//! two never get in each other's way:
//!
//! * [`Swap`] — a lock-free publish/read cell. Readers clone the
//!   current `Arc` in a handful of atomics; writers briefly wait for
//!   stragglers, readers never wait for writers.
//! * [`Snapshot`] / [`SnapshotStore`] — epoch-versioned, immutable
//!   bundles of (network view, routes, VL assignment, vet report)
//!   behind the swap. The store's invariant is the crate's reason to
//!   exist: **a snapshot becomes visible only after `vet::check`
//!   passes**, so a bad reroute can never reach a reader — the
//!   last-good epoch keeps serving through engine failures, contained
//!   panics and rejected artifacts alike.
//! * [`QueryEngine`] — a sharded thread pool answering
//!   [`PathQuery`] → [`PathAnswer`] with per-batch snapshot reads
//!   (every answer internally consistent by construction), coalescing
//!   of duplicate in-flight queries, and weighted-fair admission per
//!   [`QueryClass`]: each class runs under a [`ClassPolicy`] (a
//!   [`dfsssp_core::Budget`] plus a deficit-weighted queue share), and
//!   overload is met in order by DWRR fairness, expired-in-queue
//!   shedding, the adaptive [`ShedController`] (AIMD on queue delay),
//!   and finally queue caps — every refusal a typed
//!   [`ServeError::Overloaded`] with a `retry_after` hint.
//! * [`SloPolicy`] / [`SloVerdict`] — per-class latency objectives
//!   judged from recorded histograms; what the overload bench and CI
//!   gate on.
//! * [`RouteServer`] — the writer loop: fabric events run through
//!   [`subnet::SmLoop`]'s escalation ladder under panic containment,
//!   and each successful reroute is offered to the store's vet gate.
//! * [`pool`] — the `std`-only plumbing ([`pool::ShardedQueue`],
//!   [`pool::scoped_map`]) other crates reuse for data-parallel sweeps.
//!
//! The concurrent cores take their primitives from the [`sync`] shim, so
//! `--features loom-tests` compiles the exact production protocols against
//! the `weave` model checker (see `src/models.rs` and DESIGN.md §13).

#![warn(missing_docs)]

#[cfg(all(test, feature = "loom-tests"))]
mod models;
pub mod pool;
pub mod query;
pub mod server;
pub mod shed;
pub mod slo;
pub mod snapshot;
pub mod swap;
pub mod sync;

pub use query::{
    Admission, ClassPolicy, PathAnswer, PathQuery, QueryClass, QueryEngine, QueryOpts, ServeError,
    Ticket,
};
pub use server::{RouteServer, ServedOutcome, ServerError};
pub use shed::{ShedConfig, ShedController};
pub use slo::{SloPolicy, SloVerdict};
pub use snapshot::{DiffScope, PublishError, Snapshot, SnapshotStore};
pub use swap::Swap;
