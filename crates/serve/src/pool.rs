//! Worker-pool plumbing: sharded blocking queues and a scoped parallel
//! map, both `std::thread`-only.
//!
//! The query engine builds its shard workers on [`ShardedQueue`]; batch
//! jobs that just want data parallelism (the bench sweeps) use
//! [`scoped_map`]. Pool sizes default to
//! [`std::thread::available_parallelism`] via [`default_workers`].

use crate::sync::{Condvar, Mutex};
use std::collections::VecDeque;

/// The machine's available parallelism (≥ 1).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

struct Shard<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
}

/// A set of independent FIFO queues with blocking consumers — the
/// spine of the query engine's thread pool. Producers pick a shard
/// (usually by key hash, so related work lands together); each worker
/// drains one shard, pulling *batches* so a burst of items costs one
/// wakeup, not one per item.
pub struct ShardedQueue<T> {
    shards: Vec<Shard<T>>,
    closed: Mutex<bool>,
}

impl<T> ShardedQueue<T> {
    /// `shards` independent queues (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        ShardedQueue {
            shards: (0..shards.max(1))
                .map(|_| Shard {
                    queue: Mutex::new(VecDeque::new()),
                    ready: Condvar::new(),
                })
                .collect(),
            closed: Mutex::new(false),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Enqueue `item` on `shard` (mod the shard count). Returns the
    /// item back when the queue is closed.
    pub fn push(&self, shard: usize, item: T) -> Result<(), T> {
        if *self.closed.lock().unwrap() {
            return Err(item);
        }
        let s = &self.shards[shard % self.shards.len()];
        s.queue.lock().unwrap().push_back(item);
        s.ready.notify_one();
        Ok(())
    }

    /// Block until `shard` has work (or the queue closes), then move up
    /// to `max` items into `out`. Returns `false` when the queue is
    /// closed *and* drained — the worker's signal to exit.
    pub fn pop_batch(&self, shard: usize, max: usize, out: &mut Vec<T>) -> bool {
        let s = &self.shards[shard % self.shards.len()];
        let mut q = s.queue.lock().unwrap();
        loop {
            if !q.is_empty() {
                let n = q.len().min(max.max(1));
                out.extend(q.drain(..n));
                return true;
            }
            if *self.closed.lock().unwrap() {
                return false;
            }
            q = s.ready.wait(q).unwrap();
        }
    }

    /// Close the queue: producers start failing, consumers drain what
    /// is left and then see `false`.
    pub fn close(&self) {
        *self.closed.lock().unwrap() = true;
        for s in &self.shards {
            // Acquire each shard's queue mutex before notifying. `closed`
            // lives under its own lock, so without this a consumer could
            // read `closed == false`, lose the CPU, and park *after* the
            // notification below — a lost wakeup that hangs the worker
            // forever. Taking the queue mutex forces that consumer to
            // either finish parking first (the notify reaches it) or
            // re-check `closed` after we set it. Found by the `weave`
            // model in `crate::models::pool_queue_close_releases_blocked_consumer`.
            let _q = s.queue.lock().unwrap();
            s.ready.notify_all();
        }
    }
}

/// Map `f` over `items` on `workers` threads, preserving order.
///
/// Threads claim items through a shared cursor, so an expensive item
/// does not stall the rest of the sweep behind it. The output is
/// position-for-position with the input — callers' reports stay
/// byte-identical to the sequential sweep (modulo whatever timing the
/// items themselves measure).
pub fn scoped_map<I, O>(items: Vec<I>, workers: usize, f: impl Fn(I) -> O + Sync) -> Vec<O>
where
    I: Send,
    O: Send,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let work: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let out: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().unwrap().take().expect("claimed once");
                *out[i].lock().unwrap() = Some(f(item));
            });
        }
    });
    out.into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn push_pop_batch_roundtrip() {
        let q = ShardedQueue::new(2);
        for i in 0..10 {
            q.push(i % 2, i).unwrap();
        }
        let mut out = Vec::new();
        assert!(q.pop_batch(0, 64, &mut out));
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
        out.clear();
        assert!(q.pop_batch(1, 2, &mut out));
        assert_eq!(out, vec![1, 3], "batch cap respected");
    }

    #[test]
    fn close_drains_then_stops() {
        let q = ShardedQueue::new(1);
        q.push(0, 7).unwrap();
        q.close();
        assert!(q.push(0, 8).is_err());
        let mut out = Vec::new();
        assert!(q.pop_batch(0, 64, &mut out));
        assert_eq!(out, vec![7]);
        out.clear();
        assert!(!q.pop_batch(0, 64, &mut out));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(ShardedQueue::<u32>::new(1));
        let q2 = q.clone();
        let h = std::thread::spawn(move || {
            let mut out = Vec::new();
            q2.pop_batch(0, 8, &mut out)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(!h.join().unwrap());
    }

    #[test]
    fn scoped_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = scoped_map(items, 4, |x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        // Degenerate worker counts still work.
        assert_eq!(scoped_map(vec![1, 2, 3], 0, |x| x + 1), vec![2, 3, 4]);
        assert_eq!(scoped_map(Vec::<u8>::new(), 8, |x| x), Vec::<u8>::new());
    }
}
