//! Epoch-versioned, immutable serving snapshots and the store that
//! publishes them.
//!
//! A [`Snapshot`] is everything one epoch of the fabric needs to answer
//! path queries: the (possibly degraded) serving [`Network`], the
//! [`Routes`] the engine produced for it, the VL assignment those routes
//! carry, and the [`vet::Report`] that proves the artifact is safe to
//! serve. Snapshots are immutable — readers share them by `Arc` — and
//! carry a terminal map from *reference* node ids (the stable physical
//! identity fabric events use) to the epoch's renumbered view, so a
//! query keeps meaning the same pair of hosts across degradations.
//!
//! The [`SnapshotStore`] owns the current snapshot behind the lock-free
//! [`crate::swap::Swap`]. Its publishing gate is the subsystem's core
//! invariant: **a snapshot becomes visible only after `vet::check`
//! passes** ([`SnapshotStore::publish`] refuses artifacts with
//! error-severity findings), so a bad reroute can never reach a reader —
//! the last-good epoch simply keeps serving.

use crate::swap::Swap;
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Mutex};
use fabric::{Network, NodeId, Routes};
use std::time::Instant;
use telemetry::{counters, hists, phases, RecorderHandle};

/// One immutable epoch of the serving state.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Epoch number; 0 is bring-up, each publish increments.
    pub epoch: u64,
    /// The serving view this epoch routes (reference minus failed
    /// hardware and quarantined terminals).
    pub net: Network,
    /// Forwarding tables + virtual-layer assignment for [`Self::net`].
    pub routes: Routes,
    /// The static-analysis report the publishing gate accepted
    /// (`vet::check`; always error-free for published snapshots).
    pub vet: vet::Report,
    /// What produced this epoch (`"bring-up"`, `"event"`, …).
    pub source: String,
    /// How the tables were pushed (`UpdatePlan::describe` of the
    /// transition that installed this epoch: `direct`, `staged(2)`, …).
    pub plan: String,
    /// Reference node id → view node id, for the terminals of the
    /// reference network (`None`: quarantined / not currently served).
    ref_terminals: Vec<Option<NodeId>>,
}

impl Snapshot {
    /// Number of virtual layers this epoch's routing uses.
    pub fn vls(&self) -> u8 {
        self.routes.num_layers()
    }

    /// The V007 existence verdict the publish gate admitted this epoch
    /// under (e.g. the up*/down* certificate summary) — the *proof* an
    /// admission decision cites, not just the absence of findings.
    pub fn existence_proof(&self) -> Option<&str> {
        self.vet.stats.existence.as_deref()
    }

    /// Resolve a reference terminal id to this epoch's view, `None`
    /// when the terminal is quarantined (or `id` is out of range).
    pub fn resolve(&self, id: NodeId) -> Option<NodeId> {
        self.ref_terminals.get(id.idx()).copied().flatten()
    }

    /// Reference terminal ids this epoch serves (resolvable ones).
    pub fn served_terminals(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ref_terminals
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_some())
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Build the reference→view terminal map. With no reference the
    /// view is its own reference (identity over its terminals).
    fn terminal_map(net: &Network, reference: Option<&Network>) -> Vec<Option<NodeId>> {
        match reference {
            None => {
                let mut map = vec![None; net.num_nodes()];
                for &t in net.terminals() {
                    map[t.idx()] = Some(t);
                }
                map
            }
            Some(reference) => reference
                .nodes()
                .map(|(id, node)| {
                    if !reference.is_terminal(id) {
                        return None;
                    }
                    net.node_by_name(&node.name).filter(|&v| net.is_terminal(v))
                })
                .collect(),
        }
    }
}

/// Evidence scoping an incremental publish (see
/// [`SnapshotStore::publish_diff`]): which destination columns changed
/// relative to a base epoch, and whether the producing engine certified
/// the new all-paths layer-0 CDG acyclic.
///
/// The scoped vet gate is sound only when both hold: the unchanged
/// columns are byte-identical to the currently served (already vetted)
/// epoch, and global CDG acyclicity — the one property a per-column walk
/// cannot see — is certified by the producer. A stale `base_epoch` or a
/// missing certificate silently falls back to the full gate.
#[derive(Clone, Debug)]
pub struct DiffScope {
    /// Destination terminal indices whose columns differ from the base
    /// epoch.
    pub changed_dests: Vec<usize>,
    /// The epoch the diff was computed against; must still be current
    /// at publish time for the scoped gate to apply.
    pub base_epoch: u64,
    /// Producer's certificate that the all-paths layer-0 CDG of the new
    /// routes is acyclic (every per-layer CDG is a subset of it).
    pub layer0_acyclic: bool,
}

/// Why a publish was refused. The store's gate rejects, it never
/// panics: the previous epoch keeps serving.
#[derive(Debug)]
pub enum PublishError {
    /// `vet::check` found error-severity diagnostics; the report is
    /// attached for the operator.
    VetRejected {
        /// Error-severity findings.
        errors: usize,
        /// The full analysis.
        report: Box<vet::Report>,
    },
    /// The *fabric itself* fails the deadlock-free-routing existence
    /// condition (V007, arXiv:2503.04583): no single-layer routing —
    /// this artifact or any other — can be deadlock-free on it. A
    /// reroute cannot fix this; the caller must escalate (extra layer,
    /// quarantine, drain) instead of retrying.
    NoRoutingExists {
        /// The V007 finding, witness included.
        detail: String,
        /// The full analysis.
        report: Box<vet::Report>,
    },
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::VetRejected { errors, .. } => {
                write!(f, "vet rejected the snapshot: {errors} error(s)")
            }
            PublishError::NoRoutingExists { detail, .. } => {
                write!(f, "fabric fails the existence condition: {detail}")
            }
        }
    }
}

impl std::error::Error for PublishError {}

/// The store: one current [`Snapshot`] behind a lock-free swap, a
/// vet-gated publish path, and swap telemetry.
pub struct SnapshotStore {
    cell: Swap<Snapshot>,
    /// Epoch of the current snapshot (for stale-read accounting;
    /// updated after the swap, so it trails by at most one swap).
    epoch: AtomicU64,
    /// Serializes publishers across the whole vet+swap sequence so
    /// epoch numbers and swap order agree.
    publish_lock: Mutex<()>,
    recorder: RecorderHandle,
}

impl SnapshotStore {
    /// Open a store serving `(net, routes)` as epoch 0. The same vet
    /// gate as [`SnapshotStore::publish`] applies: a store cannot even
    /// come up on a bad artifact.
    pub fn open(
        net: Network,
        routes: Routes,
        reference: Option<&Network>,
    ) -> Result<Arc<Self>, PublishError> {
        let snap = Self::gate(0, net, routes, "bring-up", "direct", reference)?;
        Ok(Arc::new(SnapshotStore {
            cell: Swap::new(Arc::new(snap)),
            epoch: AtomicU64::new(0),
            publish_lock: Mutex::new(()),
            recorder: telemetry::noop(),
        }))
    }

    /// Attach a telemetry sink: `serve_publish` spans, the
    /// `epochs_published` / `publish_rejected` counters and the
    /// `swap_pause_us` histogram land here.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// The current snapshot. Lock-free; the returned `Arc` stays
    /// internally consistent no matter how many epochs are published
    /// after this returns.
    pub fn read(&self) -> Arc<Snapshot> {
        self.cell.read()
    }

    /// Epoch of the current snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Vet `(net, routes)` and, if clean, install it as the next epoch.
    /// Readers see the old epoch until the swap instant and the new one
    /// after; no reader ever waits or observes a mix.
    pub fn publish(
        &self,
        net: Network,
        routes: Routes,
        source: &str,
        plan: &str,
        reference: Option<&Network>,
    ) -> Result<Arc<Snapshot>, PublishError> {
        self.publish_gated(net, routes, source, plan, reference, None)
    }

    /// [`SnapshotStore::publish`] with an incremental-vet scope: when
    /// `scope` certifies layer-0 acyclicity and was computed against the
    /// epoch still being served, the gate analyzes only the changed
    /// destination columns (plus the global existence condition) instead
    /// of every path — O(change) admission for an O(change) reroute. Any
    /// mismatch falls back to the full gate; the publish itself behaves
    /// identically either way.
    pub fn publish_diff(
        &self,
        net: Network,
        routes: Routes,
        source: &str,
        plan: &str,
        reference: Option<&Network>,
        scope: &DiffScope,
    ) -> Result<Arc<Snapshot>, PublishError> {
        self.publish_gated(net, routes, source, plan, reference, Some(scope))
    }

    fn publish_gated(
        &self,
        net: Network,
        routes: Routes,
        source: &str,
        plan: &str,
        reference: Option<&Network>,
        scope: Option<&DiffScope>,
    ) -> Result<Arc<Snapshot>, PublishError> {
        let rec = self.recorder.clone();
        let _guard = self.publish_lock.lock().unwrap();
        let current = self.epoch.load(Ordering::SeqCst);
        let epoch = current + 1;
        let scope = scope.filter(|s| s.layer0_acyclic && s.base_epoch == current);
        let gated = telemetry::timed(&*rec, phases::SERVE_PUBLISH, || match scope {
            Some(s) => Self::gate_scoped(epoch, net, routes, source, plan, reference, s),
            None => Self::gate(epoch, net, routes, source, plan, reference),
        });
        let snap = match gated {
            Ok(snap) => Arc::new(snap),
            Err(e) => {
                rec.add(counters::PUBLISH_REJECTED, 1);
                return Err(e);
            }
        };
        let swap_started = Instant::now();
        self.cell.publish(snap.clone());
        self.epoch.store(epoch, Ordering::SeqCst);
        let pause = swap_started.elapsed();
        if rec.enabled() {
            rec.phase(phases::EPOCH_SWAP, pause.as_nanos() as u64);
            rec.observe(hists::SWAP_PAUSE_US, pause.as_micros() as u64);
            rec.add(counters::EPOCHS_PUBLISHED, 1);
        }
        Ok(snap)
    }

    /// The gate: analyze the artifact, refuse on any error finding.
    fn gate(
        epoch: u64,
        net: Network,
        routes: Routes,
        source: &str,
        plan: &str,
        reference: Option<&Network>,
    ) -> Result<Snapshot, PublishError> {
        let report = vet::check(&net, &routes);
        Self::admit(epoch, net, routes, source, plan, reference, report)
    }

    /// The scoped gate: analyze only the changed destination columns
    /// (the scope's certificate covers the global cycle condition).
    #[allow(clippy::too_many_arguments)]
    fn gate_scoped(
        epoch: u64,
        net: Network,
        routes: Routes,
        source: &str,
        plan: &str,
        reference: Option<&Network>,
        scope: &DiffScope,
    ) -> Result<Snapshot, PublishError> {
        let report =
            vet::analyze_scoped(&net, &routes, &scope.changed_dests, &vet::Config::default());
        Self::admit(epoch, net, routes, source, plan, reference, report)
    }

    #[allow(clippy::too_many_arguments)]
    fn admit(
        epoch: u64,
        net: Network,
        routes: Routes,
        source: &str,
        plan: &str,
        reference: Option<&Network>,
        report: vet::Report,
    ) -> Result<Snapshot, PublishError> {
        if report.num_errors() > 0 {
            // A V007 error means the fabric, not the artifact, is beyond
            // single-layer repair — name it so the caller escalates
            // instead of burning reroute budget.
            let existence_error = report
                .diagnostics_for(vet::LintCode::DeadlockExistence)
                .find(|d| d.severity == vet::Severity::Error)
                .map(|d| d.message.clone());
            if let Some(detail) = existence_error {
                return Err(PublishError::NoRoutingExists {
                    detail,
                    report: Box::new(report),
                });
            }
            return Err(PublishError::VetRejected {
                errors: report.num_errors(),
                report: Box::new(report),
            });
        }
        let ref_terminals = Snapshot::terminal_map(&net, reference);
        Ok(Snapshot {
            epoch,
            net,
            routes,
            vet: report,
            source: source.to_string(),
            plan: plan.to_string(),
            ref_terminals,
        })
    }
}

impl std::fmt::Debug for SnapshotStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotStore")
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsssp_core::{ComputeCtx, DfSssp, RoutingEngine, Sssp};
    use fabric::topo;

    fn routed(net: &Network) -> Routes {
        DfSssp::new().route_in(net, &ComputeCtx::seq()).unwrap()
    }

    #[test]
    fn open_serves_epoch_zero() {
        let net = topo::torus(&[3, 3], 1);
        let store = SnapshotStore::open(net.clone(), routed(&net), None).unwrap();
        let snap = store.read();
        assert_eq!(snap.epoch, 0);
        assert_eq!(store.epoch(), 0);
        assert!(snap.vet.clean() || snap.vet.num_errors() == 0);
        assert!(snap.vls() >= 2);
        // Identity terminal map without a reference.
        for &t in net.terminals() {
            assert_eq!(snap.resolve(t), Some(t));
        }
    }

    #[test]
    fn publish_advances_the_epoch() {
        let net = topo::kary_ntree(4, 2);
        let store = SnapshotStore::open(net.clone(), routed(&net), None).unwrap();
        for e in 1..=5 {
            let snap = store
                .publish(net.clone(), routed(&net), "test", "direct", None)
                .unwrap();
            assert_eq!(snap.epoch, e);
            assert_eq!(store.epoch(), e);
            assert_eq!(store.read().epoch, e);
        }
    }

    #[test]
    fn vet_gate_refuses_bad_artifacts() {
        // Plain SSSP on a ring has a cyclic CDG: V004, error severity.
        let net = topo::ring(5, 1);
        let routes = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        match SnapshotStore::open(net.clone(), routes.clone(), None) {
            Err(PublishError::VetRejected { errors, report }) => {
                assert!(errors > 0);
                assert!(report.has(vet::LintCode::CdgCycle));
            }
            other => panic!("cyclic artifact must be VetRejected, got {other:?}"),
        }
        // And the same gate guards a running store: the good epoch
        // stays current after a refused publish.
        let store = SnapshotStore::open(net.clone(), routed(&net), None).unwrap();
        assert!(store
            .publish(net.clone(), routes, "test", "direct", None)
            .is_err());
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.read().epoch, 0);
    }

    #[test]
    fn publish_diff_scoped_accepts_and_advances() {
        let net = topo::torus(&[3, 3], 1);
        let store = SnapshotStore::open(net.clone(), routed(&net), None).unwrap();
        let scope = DiffScope {
            changed_dests: vec![0, 3],
            base_epoch: store.epoch(),
            layer0_acyclic: true,
        };
        let snap = store
            .publish_diff(net.clone(), routed(&net), "event", "direct", None, &scope)
            .unwrap();
        assert_eq!(snap.epoch, 1);
        assert_eq!(store.epoch(), 1);
        assert_eq!(snap.vet.num_errors(), 0);
    }

    #[test]
    fn stale_scope_falls_back_to_the_full_gate() {
        // A cyclic artifact with an *empty* changed-dest scope would slip
        // through a scoped walk; a stale base_epoch must force the full
        // gate, which rejects it.
        let net = topo::ring(5, 1);
        let bad = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let store = SnapshotStore::open(net.clone(), routed(&net), None).unwrap();
        let stale = DiffScope {
            changed_dests: vec![],
            base_epoch: store.epoch() + 7,
            layer0_acyclic: true,
        };
        match store.publish_diff(net.clone(), bad.clone(), "event", "direct", None, &stale) {
            Err(PublishError::VetRejected { report, .. }) => {
                assert!(report.has(vet::LintCode::CdgCycle));
            }
            other => panic!("stale scope must full-vet and reject, got {other:?}"),
        }
        // Same for a scope missing the acyclicity certificate.
        let uncertified = DiffScope {
            changed_dests: vec![],
            base_epoch: store.epoch(),
            layer0_acyclic: false,
        };
        assert!(store
            .publish_diff(net.clone(), bad, "event", "direct", None, &uncertified)
            .is_err());
        assert_eq!(store.epoch(), 0, "rejections must not advance the epoch");
    }

    #[test]
    fn scoped_gate_still_rejects_cycles_inside_the_scope() {
        let net = topo::ring(5, 1);
        let bad = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let store = SnapshotStore::open(net.clone(), routed(&net), None).unwrap();
        let all: Vec<usize> = (0..net.num_terminals()).collect();
        let scope = DiffScope {
            changed_dests: all,
            base_epoch: store.epoch(),
            layer0_acyclic: true,
        };
        match store.publish_diff(net.clone(), bad, "event", "direct", None, &scope) {
            Err(PublishError::VetRejected { report, .. }) => {
                assert!(report.has(vet::LintCode::CdgCycle));
            }
            other => panic!("in-scope cycle must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn published_snapshots_carry_an_existence_proof() {
        let net = topo::torus(&[3, 3], 1);
        let store = SnapshotStore::open(net.clone(), routed(&net), None).unwrap();
        let proof = store.read().existence_proof().unwrap().to_string();
        assert!(proof.starts_with("certified"), "{proof}");
    }

    #[test]
    fn existence_violation_is_named_not_lumped_in() {
        // A half-dead inter-switch link: t1 -> t0 becomes unservable, so
        // V007 refutes existence for the *fabric* and the gate must say
        // so — this is not a "try another reroute" rejection.
        let mut b = fabric::NetworkBuilder::new();
        let s0 = b.add_switch("s0", 4);
        let s1 = b.add_switch("s1", 4);
        let t0 = b.add_terminal("t0");
        let t1 = b.add_terminal("t1");
        b.add_channel(s0, s1).unwrap();
        b.link(t0, s0).unwrap();
        b.link(t1, s1).unwrap();
        let net = b.build();
        let routes = Routes::new(&net, "none");
        match SnapshotStore::open(net, routes, None) {
            Err(PublishError::NoRoutingExists { detail, report }) => {
                assert!(detail.contains("no routing can serve"), "{detail}");
                assert!(report.has(vet::LintCode::DeadlockExistence));
            }
            other => panic!("expected NoRoutingExists, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_is_refused_not_panicking() {
        let net = topo::ring(5, 1);
        let other = topo::ring(6, 1);
        let routes = routed(&other);
        assert!(SnapshotStore::open(net, routes, None).is_err());
    }

    #[test]
    fn reference_map_tracks_degraded_views() {
        use rustc_hash::FxHashSet;
        let reference = topo::kary_ntree(4, 2);
        // Kill one leaf switch: its terminals leave the view.
        let leaf = *reference
            .switches()
            .iter()
            .find(|&&s| reference.node(s).level == Some(0))
            .unwrap();
        let removed: FxHashSet<_> = [leaf].into_iter().collect();
        let view = fabric::degrade::remove(&reference, &removed, &FxHashSet::default());
        let (core, _) = fabric::degrade::extract_core(&view);
        let store = SnapshotStore::open(core.clone(), routed(&core), Some(&reference)).unwrap();
        let snap = store.read();
        let mut served = 0;
        let mut gone = 0;
        for &t in reference.terminals() {
            match snap.resolve(t) {
                Some(v) => {
                    assert_eq!(core.node(v).name, reference.node(t).name);
                    served += 1;
                }
                None => gone += 1,
            }
        }
        assert!(gone > 0, "the dead leaf's terminals must be unresolvable");
        assert_eq!(served + gone, reference.num_terminals());
        assert_eq!(snap.served_terminals().count(), served);
    }
}
