//! Per-class service-level objectives judged from recorded telemetry.
//!
//! The serving path records a submit-to-redeem latency histogram per
//! [`QueryClass`] (`wait_us_interactive` / `wait_us_bulk`, observed by
//! [`crate::Ticket::wait`] whenever a recorder is attached). An
//! [`SloPolicy`] turns one of those histograms into a typed pass/fail
//! [`SloVerdict`] — the contract the overload bench and CI's
//! overload-smoke job gate on, instead of eyeballing percentiles.
//!
//! The p99 estimate comes from [`telemetry::Hist`]'s log₂ buckets, so
//! it is an upper edge, not an exact order statistic — conservative in
//! the right direction for a "did we stay under the target" question.

use crate::query::QueryClass;
use std::time::Duration;
use telemetry::Snapshot as Metrics;

/// A latency objective for one query class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloPolicy {
    /// The class under judgment.
    pub class: QueryClass,
    /// 99th-percentile submit-to-redeem latency target.
    pub p99: Duration,
}

impl SloPolicy {
    /// Judge this objective against a recorded metrics snapshot.
    pub fn judge(&self, metrics: &Metrics) -> SloVerdict {
        let class = self.class.name();
        let target_us = self.p99.as_micros() as u64;
        match metrics.histograms.get(wait_hist(self.class)) {
            None => SloVerdict::NoData { class },
            Some(h) if h.count == 0 => SloVerdict::NoData { class },
            Some(h) => {
                let Some(p99_us) = h.quantile(0.99) else {
                    return SloVerdict::NoData { class };
                };
                if p99_us <= target_us {
                    SloVerdict::Met {
                        class,
                        p99_us,
                        target_us,
                        served: h.count,
                    }
                } else {
                    SloVerdict::Violated {
                        class,
                        p99_us,
                        target_us,
                        served: h.count,
                    }
                }
            }
        }
    }
}

/// The wait-latency histogram name for a class (see [`telemetry::hists`]).
pub(crate) fn wait_hist(class: QueryClass) -> &'static str {
    match class {
        QueryClass::Interactive => telemetry::hists::WAIT_US_INTERACTIVE,
        QueryClass::Bulk => telemetry::hists::WAIT_US_BULK,
    }
}

/// The outcome of judging one [`SloPolicy`]. Dropping a verdict on the
/// floor defeats the point of computing it, hence `#[must_use]`.
#[must_use = "an SLO verdict exists to be acted on; check met() or match it"]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloVerdict {
    /// The class stayed within its objective.
    Met {
        /// Class name.
        class: &'static str,
        /// Estimated p99 latency, microseconds (bucket upper edge).
        p99_us: u64,
        /// The configured target, microseconds.
        target_us: u64,
        /// Observations behind the estimate.
        served: u64,
    },
    /// The class blew its objective.
    Violated {
        /// Class name.
        class: &'static str,
        /// Estimated p99 latency, microseconds (bucket upper edge).
        p99_us: u64,
        /// The configured target, microseconds.
        target_us: u64,
        /// Observations behind the estimate.
        served: u64,
    },
    /// No latency observations were recorded for the class.
    NoData {
        /// Class name.
        class: &'static str,
    },
}

impl SloVerdict {
    /// `true` when the objective held. [`SloVerdict::NoData`] is *not*
    /// a pass — a silent recorder must not green-light a gate.
    pub fn met(&self) -> bool {
        matches!(self, SloVerdict::Met { .. })
    }
}

impl std::fmt::Display for SloVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SloVerdict::Met {
                class,
                p99_us,
                target_us,
                served,
            } => write!(
                f,
                "{class}: MET p99 {p99_us}us <= {target_us}us over {served} queries"
            ),
            SloVerdict::Violated {
                class,
                p99_us,
                target_us,
                served,
            } => write!(
                f,
                "{class}: VIOLATED p99 {p99_us}us > {target_us}us over {served} queries"
            ),
            SloVerdict::NoData { class } => write!(f, "{class}: no latency data"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::{Collector, Recorder};

    fn policy(class: QueryClass, p99_ms: u64) -> SloPolicy {
        SloPolicy {
            class,
            p99: Duration::from_millis(p99_ms),
        }
    }

    #[test]
    fn met_when_under_target() {
        let c = Collector::new();
        for _ in 0..100 {
            c.observe(wait_hist(QueryClass::Interactive), 200);
        }
        let v = policy(QueryClass::Interactive, 10).judge(&c.snapshot());
        assert!(v.met());
        match v {
            SloVerdict::Met {
                class,
                served,
                target_us,
                ..
            } => {
                assert_eq!(class, "interactive");
                assert_eq!(served, 100);
                assert_eq!(target_us, 10_000);
            }
            other => panic!("expected Met, got {other}"),
        }
    }

    #[test]
    fn violated_when_the_tail_is_slow() {
        let c = Collector::new();
        // 99 fast, 2 catastrophically slow: p99 lands in the slow tail.
        for _ in 0..99 {
            c.observe(wait_hist(QueryClass::Bulk), 100);
        }
        c.observe(wait_hist(QueryClass::Bulk), 5_000_000);
        c.observe(wait_hist(QueryClass::Bulk), 5_000_000);
        let v = policy(QueryClass::Bulk, 1).judge(&c.snapshot());
        assert!(!v.met());
        assert!(matches!(v, SloVerdict::Violated { class: "bulk", .. }));
    }

    #[test]
    fn no_data_is_not_a_pass() {
        let c = Collector::new();
        let v = policy(QueryClass::Interactive, 1).judge(&c.snapshot());
        assert!(!v.met());
        assert!(matches!(v, SloVerdict::NoData { .. }));
        assert_eq!(v.to_string(), "interactive: no latency data");
    }

    #[test]
    fn verdicts_render_for_operators() {
        let c = Collector::new();
        c.observe(wait_hist(QueryClass::Interactive), 10);
        let v = policy(QueryClass::Interactive, 5).judge(&c.snapshot());
        assert!(v.to_string().contains("MET"));
    }
}
