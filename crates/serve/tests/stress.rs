//! The concurrent snapshot-swap stress test (ISSUE 5 satellite):
//! reader threads hammer [`PathQuery`]s while a writer publishes a
//! stream of epochs through chaos events. Afterwards every recorded
//! answer is re-derived from the *exact snapshot of its epoch* — hops
//! and VL must match, proving no answer ever mixed epochs — and every
//! snapshot any reader could have observed is vet-clean.

use dfsssp_core::DfSssp;
use fabric::{topo, ChannelId, Network, NodeId};
use rustc_hash::FxHashSet;
use serve::{PathAnswer, PathQuery, QueryEngine, QueryOpts, RouteServer, ServedOutcome, Snapshot};
// `serve::sync::Arc` so `store.read()`'s type matches under both the std
// build and `--features loom-tests` (where it is weave's tracked Arc).
use serve::sync::Arc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use subnet::FabricEvent;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Switch-switch cables whose loss keeps the fabric strongly connected,
/// so the chaos schedule never unserves a terminal.
fn safe_cables(net: &Network) -> Vec<ChannelId> {
    net.channels()
        .filter(|(id, ch)| {
            net.is_switch(ch.src) && net.is_switch(ch.dst) && ch.rev.is_none_or(|r| r.0 > id.0)
        })
        .filter(|&(id, ch)| {
            let mut dead: FxHashSet<ChannelId> = FxHashSet::default();
            dead.insert(id);
            if let Some(r) = ch.rev {
                dead.insert(r);
            }
            fabric::degrade::remove(net, &FxHashSet::default(), &dead).is_strongly_connected()
        })
        .map(|(id, _)| id)
        .collect()
}

#[test]
fn readers_never_observe_inconsistent_or_unvetted_epochs() {
    const EPOCHS: u64 = 12;
    const READERS: usize = 4;

    let net = topo::kary_ntree(4, 2);
    let mut server =
        RouteServer::bring_up(DfSssp::new(), net.clone(), net.terminals()[0]).expect("bring-up");
    let safe = safe_cables(&net);
    assert!(!safe.is_empty(), "test topology must have redundant cables");

    let store = server.store();
    let engine = QueryEngine::new(store.clone(), QueryOpts::default());
    // Every snapshot a reader could have seen: epoch 0 plus one entry
    // per publish, captured by the (single) writer right after the swap.
    let history: Mutex<Vec<Arc<Snapshot>>> = Mutex::new(vec![store.read()]);
    let answers: Mutex<Vec<(NodeId, NodeId, PathAnswer)>> = Mutex::new(Vec::new());
    let answered = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let terminals = net.terminals().to_vec();

    std::thread::scope(|s| {
        for r in 0..READERS {
            let (engine, terminals) = (&engine, &terminals);
            let (answers, answered, done) = (&answers, &answered, &done);
            s.spawn(move || {
                let mut rng = 0xDEAD_BEEF ^ (r as u64) << 21;
                let mut local = Vec::new();
                while !done.load(Ordering::Relaxed) {
                    rng = splitmix64(rng);
                    let src = terminals[(rng % terminals.len() as u64) as usize];
                    rng = splitmix64(rng);
                    let dst = terminals[(rng % terminals.len() as u64) as usize];
                    if src == dst {
                        continue;
                    }
                    let a = engine
                        .query(PathQuery::new(src, dst))
                        .expect("safe chaos never unserves a terminal");
                    local.push((src, dst, a));
                    answered.fetch_add(1, Ordering::Relaxed);
                }
                answers.lock().unwrap().extend(local);
            });
        }
        // The writer: down/up redundant cables until EPOCHS epochs are
        // out, pacing on reader progress so swaps interleave queries.
        let mut rng = 7u64;
        let mut published = 0u64;
        while published < EPOCHS {
            rng = splitmix64(rng);
            let cable = safe[(rng % safe.len() as u64) as usize];
            for event in [FabricEvent::CableDown(cable), FabricEvent::CableUp(cable)] {
                if published >= EPOCHS {
                    break;
                }
                if let ServedOutcome { epoch: Some(e), .. } =
                    server.handle(event).expect("chaos event")
                {
                    published += 1;
                    let snap = store.read();
                    assert_eq!(snap.epoch, e, "single writer captures its own epoch");
                    history.lock().unwrap().push(snap);
                }
                let target = answered.load(Ordering::Relaxed) + READERS as u64 * 2;
                while answered.load(Ordering::Relaxed) < target {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
            }
        }
        done.store(true, Ordering::Relaxed);
    });
    drop(engine);

    let history = history.into_inner().unwrap();
    let answers = answers.into_inner().unwrap();
    assert_eq!(history.len() as u64, EPOCHS + 1);
    assert!(!answers.is_empty());

    // No reader can have observed a non-vet-clean table: everything
    // that was ever current is in `history`, and all of it is clean.
    for snap in &history {
        assert_eq!(
            snap.vet.num_errors(),
            0,
            "epoch {} not vet-clean",
            snap.epoch
        );
    }

    // Internal consistency: re-derive each answer from the snapshot of
    // the epoch it claims; hops and VL must match exactly.
    let mut seen_epochs = FxHashSet::default();
    for (src, dst, a) in &answers {
        let snap = history
            .iter()
            .find(|s| s.epoch == a.epoch)
            .unwrap_or_else(|| panic!("answer from unknown epoch {}", a.epoch));
        let expected = snap
            .answer(*src, *dst)
            .expect("epoch served this pair when it was current");
        assert_eq!(a, &expected, "answer mixed epochs for {src:?}->{dst:?}");
        seen_epochs.insert(a.epoch);
    }
    assert!(
        seen_epochs.len() > 1,
        "paced chaos must spread answers over multiple epochs, got {seen_epochs:?}"
    );
}
