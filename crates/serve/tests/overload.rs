//! The overload stress test (ISSUE 7): open-loop-style load far past
//! one worker's capacity, with a chaos writer publishing epochs mid-run.
//!
//! The contract under test is the robustness acceptance bar:
//!
//! * every response is either a **valid epoch-consistent answer**
//!   (re-derived exactly from the snapshot of the epoch it claims) or a
//!   **typed shed** (`Overloaded { retry_after > 0 }` or a
//!   `BudgetExceeded` deadline trip) — never a malformed answer, never
//!   an untyped failure;
//! * the protected class keeps flowing and meets a latency objective
//!   while best-effort traffic is thinned;
//! * the shed rate never reaches 100% (the controller's floor), and a
//!   mid-run chaos epoch publishes normally.

use dfsssp_core::{DfSssp, RouteError};
use fabric::{topo, ChannelId, Network, NodeId};
use rustc_hash::FxHashSet;
use serve::sync::Arc;
use serve::{
    Admission, ClassPolicy, PathAnswer, PathQuery, QueryClass, QueryOpts, RouteServer, ServeError,
    ShedConfig, SloPolicy, Snapshot, Ticket,
};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use subnet::{FabricEvent, Rung};
use telemetry::Collector;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Switch-switch cables whose loss keeps the fabric strongly connected,
/// so the chaos schedule never unserves a terminal.
fn safe_cables(net: &Network) -> Vec<ChannelId> {
    net.channels()
        .filter(|(id, ch)| {
            net.is_switch(ch.src) && net.is_switch(ch.dst) && ch.rev.is_none_or(|r| r.0 > id.0)
        })
        .filter(|&(id, ch)| {
            let mut dead: FxHashSet<ChannelId> = FxHashSet::default();
            dead.insert(id);
            if let Some(r) = ch.rev {
                dead.insert(r);
            }
            fabric::degrade::remove(net, &FxHashSet::default(), &dead).is_strongly_connected()
        })
        .map(|(id, _)| id)
        .collect()
}

/// What one client observed, tallied post-hoc.
#[derive(Default)]
struct Tally {
    answered: u64,
    overloaded: u64,
    expired: u64,
    /// Sampled Ok answers for epoch-consistency verification.
    samples: Vec<(NodeId, NodeId, PathAnswer)>,
}

fn redeem(ticket: Result<Ticket, ServeError>, src: NodeId, dst: NodeId, tally: &mut Tally) {
    let outcome = match ticket {
        Ok(t) => t.wait(),
        Err(e) => Err(e),
    };
    match outcome {
        Ok(a) => {
            tally.answered += 1;
            // Sample for post-run re-derivation; keeping every answer
            // would dominate the test's memory.
            if tally.answered.is_multiple_of(8) {
                tally.samples.push((src, dst, a));
            }
        }
        Err(ServeError::Overloaded { retry_after }) => {
            assert!(retry_after > Duration::ZERO, "untyped backoff hint");
            tally.overloaded += 1;
        }
        Err(ServeError::Budget(RouteError::BudgetExceeded { resource, .. })) => {
            assert_eq!(resource, "deadline_ms", "only deadline trips expected");
            tally.expired += 1;
        }
        Err(other) => panic!("response was neither an answer nor a typed shed: {other}"),
    }
}

#[test]
fn four_x_overload_sheds_typed_and_answers_stay_epoch_consistent() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 20_000;
    const BURST: usize = 64;

    let net = topo::kary_ntree(4, 2);
    let collector = std::sync::Arc::new(Collector::new());
    let mut server = RouteServer::bring_up_recorded(
        DfSssp::new(),
        net.clone(),
        net.terminals()[0],
        collector.clone(),
    )
    .expect("bring-up");
    let safe = safe_cables(&net);
    assert!(!safe.is_empty(), "test topology must have redundant cables");

    // One worker, small queues, a tight shed servo: the point is to be
    // overdriven — four burst-submitting clients offer far more than
    // 4x what a single worker drains from 32-deep queues.
    let engine = server.query_engine(QueryOpts {
        workers: 1,
        batch: 16,
        admission: Admission {
            interactive: ClassPolicy {
                weight: 8,
                max_queued: 64,
                ..ClassPolicy::default()
            },
            bulk: ClassPolicy {
                budget: dfsssp_core::Budget::new().deadline(Duration::from_millis(50)),
                weight: 1,
                max_queued: 32,
                sheddable: true,
            },
        },
        shed: ShedConfig {
            target_delay: Duration::from_millis(1),
            tick: Duration::from_millis(5),
            floor_permille: 50,
            step_permille: 25,
        },
        recorder: collector.clone(),
    });
    let shed = engine.shed_controller();
    let store = server.store();
    let history: Mutex<Vec<Arc<Snapshot>>> = Mutex::new(vec![store.read()]);
    let live_clients = AtomicUsize::new(CLIENTS);
    let chaos_epochs = AtomicU64::new(0);
    let terminals = net.terminals().to_vec();
    let tallies: Mutex<Vec<Tally>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let (engine, terminals) = (&engine, &terminals);
            let (tallies, live_clients) = (&tallies, &live_clients);
            s.spawn(move || {
                let mut rng = 0xC0FF_EE00 ^ ((c as u64) << 17);
                let mut tally = Tally::default();
                let mut inflight: Vec<(Result<Ticket, ServeError>, NodeId, NodeId)> =
                    Vec::with_capacity(BURST);
                for _ in 0..PER_CLIENT {
                    rng = splitmix64(rng);
                    let src = terminals[(rng % terminals.len() as u64) as usize];
                    rng = splitmix64(rng);
                    let dst = terminals[(rng % terminals.len() as u64) as usize];
                    if src == dst {
                        continue;
                    }
                    rng = splitmix64(rng);
                    let class = if rng % 100 < 75 {
                        QueryClass::Bulk
                    } else {
                        QueryClass::Interactive
                    };
                    let q = PathQuery { src, dst, class };
                    // Open-loop-style: keep a burst in flight instead of
                    // waiting per query, so queues actually fill.
                    inflight.push((engine.submit(q), src, dst));
                    if inflight.len() >= BURST {
                        for (t, src, dst) in inflight.drain(..) {
                            redeem(t, src, dst, &mut tally);
                        }
                    }
                }
                for (t, src, dst) in inflight.drain(..) {
                    redeem(t, src, dst, &mut tally);
                }
                tallies.lock().unwrap().push(tally);
                live_clients.fetch_sub(1, Ordering::Relaxed);
            });
        }
        // The chaos writer: publish down/up epochs while the clients
        // hammer the engine; every publish is captured for post-run
        // verification.
        let mut rng = 7u64;
        while live_clients.load(Ordering::Relaxed) > 0 {
            rng = splitmix64(rng);
            let cable = safe[(rng % safe.len() as u64) as usize];
            for event in [FabricEvent::CableDown(cable), FabricEvent::CableUp(cable)] {
                let served = server.handle(event).expect("chaos event");
                if served.epoch.is_some() {
                    chaos_epochs.fetch_add(1, Ordering::Relaxed);
                    history.lock().unwrap().push(store.read());
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    });

    let history = history.into_inner().unwrap();
    let mut total = Tally::default();
    for t in tallies.into_inner().unwrap() {
        total.answered += t.answered;
        total.overloaded += t.overloaded;
        total.expired += t.expired;
        total.samples.extend(t.samples);
    }

    // The load/availability bar: work flowed, load was shed, and the
    // shed rate never reached 100%.
    assert!(
        total.answered > 0,
        "overload must not collapse availability"
    );
    assert!(
        total.overloaded > 0,
        "4x load against 32-deep queues must shed something"
    );
    assert!(
        shed.min_admitted_permille() > 0,
        "the shed floor must hold: admitted rate hit zero"
    );
    assert!(
        chaos_epochs.load(Ordering::Relaxed) >= 2,
        "chaos epochs must publish during overload"
    );

    // Consistency bar: every sampled answer re-derives exactly from the
    // snapshot of the epoch it claims.
    for (src, dst, a) in &total.samples {
        let snap = history
            .iter()
            .find(|s| s.epoch == a.epoch)
            .unwrap_or_else(|| panic!("answer from unknown epoch {}", a.epoch));
        let expected = snap
            .answer(*src, *dst)
            .expect("safe chaos never unserves a terminal");
        assert_eq!(&expected, a, "answer mixed epochs for {src:?}->{dst:?}");
    }

    // SLO bar: the protected class held a (generous, scheduler-noise
    // tolerant) p99 while bulk was the class being thinned.
    let metrics = collector.snapshot();
    let verdict = SloPolicy {
        class: QueryClass::Interactive,
        p99: Duration::from_millis(500),
    }
    .judge(&metrics);
    assert!(
        verdict.met(),
        "protected class blew its objective: {verdict}"
    );

    // The engine still serves after the storm.
    let (a, b) = (terminals[0], terminals[1]);
    let answer = engine
        .query(PathQuery::new(a, b))
        .expect("post-storm query");
    assert_eq!(answer.epoch, store.epoch());
}

#[test]
fn publishing_while_shedding_carries_the_overload_rung() {
    let net = topo::kary_ntree(4, 2);
    let mut server =
        RouteServer::bring_up(DfSssp::new(), net.clone(), net.terminals()[0]).expect("bring-up");
    let engine = server.query_engine(QueryOpts {
        workers: 1,
        shed: ShedConfig {
            tick: Duration::from_millis(5),
            ..ShedConfig::default()
        },
        ..QueryOpts::default()
    });
    // Drive the controller into shed by hand (one halving per tick).
    let shed = engine.shed_controller();
    for _ in 0..4 {
        std::thread::sleep(Duration::from_millis(6));
        shed.on_queue_full(&telemetry::Noop);
    }
    assert!(shed.shedding());
    let cable = safe_cables(&net)[0];
    let served = server.handle(FabricEvent::CableDown(cable)).expect("chaos");
    assert!(served.epoch.is_some());
    let rung = served
        .outcome
        .rungs
        .iter()
        .find(|r| matches!(r, Rung::OverloadShed { .. }))
        .expect("an epoch published mid-shed must carry the overload rung");
    match rung {
        Rung::OverloadShed { admitted_permille } => {
            assert!(*admitted_permille > 0, "rung must prove the floor held");
            assert!(*admitted_permille < 1000);
        }
        _ => unreachable!(),
    }
    assert_eq!(rung.to_string(), format!("{rung}"));
}
