//! Cycle detection over per-layer channel dependency graphs.
//!
//! The walker hands over one edge set per virtual layer; an acyclic set
//! satisfies the Dally & Seitz condition for that layer. A cycle is
//! reported with its actual channel sequence as the witness.

use fabric::ChannelId;
use rustc_hash::FxHashSet;

/// Find a cycle in the dependency edge set, if any. Returns the channel
/// sequence `c_0 → c_1 → … → c_k → c_0` (without repeating `c_0` at the
/// end); deterministic for a given edge set.
pub(crate) fn find_cycle(
    num_channels: usize,
    edges: &FxHashSet<(u32, u32)>,
) -> Option<Vec<ChannelId>> {
    if edges.is_empty() {
        return None;
    }
    // Sorted adjacency so the reported cycle does not depend on hash order.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); num_channels];
    for &(from, to) in edges {
        adj[from as usize].push(to);
    }
    for outs in &mut adj {
        outs.sort_unstable();
    }

    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; num_channels];
    // DFS stack of (channel, next out-edge index); the grey path is the
    // stack itself, so a back edge yields the cycle as a stack suffix.
    let mut stack: Vec<(u32, usize)> = Vec::new();
    for start in 0..num_channels as u32 {
        if color[start as usize] != WHITE {
            continue;
        }
        color[start as usize] = GREY;
        stack.push((start, 0));
        while let Some(top) = stack.last_mut() {
            let u = top.0 as usize;
            if top.1 < adj[u].len() {
                let v = adj[u][top.1];
                top.1 += 1;
                match color[v as usize] {
                    WHITE => {
                        color[v as usize] = GREY;
                        stack.push((v, 0));
                    }
                    GREY => {
                        let pos = stack
                            .iter()
                            .position(|&(w, _)| w == v)
                            .expect("grey node is on the DFS stack");
                        return Some(stack[pos..].iter().map(|&(w, _)| ChannelId(w)).collect());
                    }
                    _ => {}
                }
            } else {
                color[u] = BLACK;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(edges: &[(u32, u32)]) -> FxHashSet<(u32, u32)> {
        edges.iter().copied().collect()
    }

    #[test]
    fn acyclic_has_no_cycle() {
        assert!(find_cycle(4, &set(&[(0, 1), (1, 2), (0, 2), (2, 3)])).is_none());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let cycle = find_cycle(2, &set(&[(1, 1)])).unwrap();
        assert_eq!(cycle, vec![ChannelId(1)]);
    }

    #[test]
    fn cycle_is_closed_and_chained() {
        let edges = set(&[(0, 1), (1, 2), (2, 3), (3, 1)]);
        let cycle = find_cycle(4, &edges).unwrap();
        assert!(!cycle.is_empty());
        for w in cycle.windows(2) {
            assert!(edges.contains(&(w[0].0, w[1].0)));
        }
        assert!(edges.contains(&(cycle.last().unwrap().0, cycle[0].0)));
        // Node 0 feeds the cycle but is not part of it.
        assert!(!cycle.contains(&ChannelId(0)));
    }

    #[test]
    fn empty_is_acyclic() {
        assert!(find_cycle(8, &FxHashSet::default()).is_none());
    }
}
