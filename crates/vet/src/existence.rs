//! V007 — does a deadlock-free routing *exist* for this fabric at all?
//!
//! Every other lint judges an artifact; this one judges the network.
//! Mendlovic & Matias (arXiv:2503.04583) study exactly this question:
//! given an arbitrary channel graph, does *some* assignment of paths
//! connecting the required terminal pairs have an acyclic channel
//! dependency graph (Dally & Seitz), without adding virtual layers? A
//! degraded fabric can fail this condition — at which point no reroute,
//! however clever, can restore single-layer deadlock freedom, and the
//! control plane should escalate (add a layer, quarantine, drain)
//! instead of burning reroute budget on an impossible ask.
//!
//! Deciding existence exactly is hard in general, so [`existence`] is a
//! sound three-valued decision procedure scoped to **one virtual
//! layer** (the Mendlovic–Matias setting; the multi-layer escape hatch
//! is precisely what the escalation ladder buys):
//!
//! * [`Existence::NotExists`] — a machine-checkable refutation:
//!   * **One-way pair**: terminals connected by cabling but directed
//!     reachability holds in only one direction (a half-dead link). No
//!     routing of any kind serves the pair, deadlock-free or not.
//!   * **Forced cycle**: for some pairs the fabric admits exactly one
//!     path (at every node along it, exactly one usable out-channel
//!     makes progress). The dependency edges of such paths appear in
//!     *every* routing; if their union is cyclic, every single-layer
//!     routing violates Dally & Seitz.
//! * [`Existence::Exists`] — a certificate: orient the bidirected
//!   subgraph up*/down* from a BFS root per component ((depth, id)
//!   order), verify the allowed-dependency graph (everything except
//!   down→up turns) is acyclic, and check every required pair has both
//!   endpoints under a common root. Up*/down* paths then connect every
//!   required pair with dependencies drawn only from the acyclic
//!   allowed graph — a constructive deadlock-free routing.
//! * [`Existence::Undecided`] — neither side closed: some pair is
//!   routable only over one-directional channels the up*/down*
//!   certificate cannot order. Reported as a warning, never an error.
//!
//! Pairs in different undirected (cabling) components are *not*
//! required: they are latent fabric facts in V002's jurisdiction, and a
//! fabric split in two still deserves an existence verdict per half.

use crate::cdg_lint;
use fabric::{ChannelId, Network, NodeId};
use rustc_hash::FxHashSet;

/// The V007 verdict for a fabric. See the module docs for semantics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Existence {
    /// A deadlock-free single-layer routing exists; the up*/down*
    /// orientation rooted at `roots` (one per bidirected component) is
    /// a constructive witness covering all `pairs` required pairs.
    Exists {
        roots: Vec<NodeId>,
        /// Ordered terminal pairs the certificate covers.
        pairs: usize,
    },
    /// No single-layer deadlock-free routing exists; the witness is a
    /// concrete refutation.
    NotExists(ExistenceWitness),
    /// The procedure could neither certify nor refute; `(src, dst)` is
    /// the first required pair the certificate fails to cover.
    Undecided { src: NodeId, dst: NodeId },
}

/// A concrete refutation of single-layer deadlock-free-routing
/// existence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExistenceWitness {
    /// `src` and `dst` share a cable path but no directed path: the
    /// pair is unservable outright.
    OneWayPair { src: NodeId, dst: NodeId },
    /// Dependency edges forced by unique paths close this cycle
    /// (channels chain head-to-tail, last feeds first).
    ForcedCycle { channels: Vec<ChannelId> },
}

/// Per-pair work cap for the forced-path walks: pairs² × channels
/// beyond this skips the walks (the refuter weakens to one-way pairs
/// only — sound, the verdict just leans Undecided on huge degraded
/// fabrics instead of stalling a publish gate).
const FORCED_WALK_BUDGET: u64 = 50_000_000;

/// Decide whether `net` admits a deadlock-free routing on a single
/// virtual layer. Runs in `O(T · E)` for the reachability passes plus
/// `O(T² · diameter · E)` (budget-capped) for the forced-path walks.
pub fn existence(net: &Network) -> Existence {
    let terms = net.terminals();
    if terms.len() < 2 {
        // Nothing to route: the empty routing is vacuously deadlock-free.
        return Existence::Exists {
            roots: Vec::new(),
            pairs: 0,
        };
    }

    let cert = Certificate::build(net);
    let walk_forced = (terms.len() as u64)
        .pow(2)
        .saturating_mul(net.num_channels().max(1) as u64)
        <= FORCED_WALK_BUDGET;
    let mut forced: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut uncertified: Option<(NodeId, NodeId)> = None;
    let mut required_pairs = 0usize;

    for &d in terms {
        let reach = directed_reach_to(net, d);
        let cabled = undirected_reach_to(net, d);
        for &s in terms {
            if s == d || !cabled[s.idx()] {
                continue;
            }
            required_pairs += 1;
            if !reach[s.idx()] {
                return Existence::NotExists(ExistenceWitness::OneWayPair { src: s, dst: d });
            }
            if walk_forced {
                collect_forced_edges(net, s, d, &mut forced);
            }
            if uncertified.is_none() && !cert.covers(net, s, d) {
                uncertified = Some((s, d));
            }
        }
    }

    if let Some(channels) = cdg_lint::find_cycle(net.num_channels(), &forced) {
        return Existence::NotExists(ExistenceWitness::ForcedCycle { channels });
    }
    if let Some((src, dst)) = uncertified {
        return Existence::Undecided { src, dst };
    }
    Existence::Exists {
        roots: cert.roots,
        pairs: required_pairs,
    }
}

/// Nodes with a directed path to `d` transiting only switches. `d`
/// itself is marked; terminals may source such a path but never relay
/// one, so the reverse BFS expands switch nodes only.
fn directed_reach_to(net: &Network, d: NodeId) -> Vec<bool> {
    let mut reach = vec![false; net.num_nodes()];
    reach[d.idx()] = true;
    let mut queue = vec![d];
    while let Some(v) = queue.pop() {
        for &c in net.in_channels(v) {
            let u = net.channel(c).src;
            if !reach[u.idx()] {
                reach[u.idx()] = true;
                if net.is_switch(u) {
                    queue.push(u);
                }
            }
        }
    }
    reach
}

/// Nodes sharing a cable path with `d` (channels taken in either
/// direction), same switch-transit rule. Defines which pairs the
/// fabric *intends* to connect — and therefore which pairs V007 must
/// account for.
fn undirected_reach_to(net: &Network, d: NodeId) -> Vec<bool> {
    let mut reach = vec![false; net.num_nodes()];
    reach[d.idx()] = true;
    let mut queue = vec![d];
    while let Some(v) = queue.pop() {
        let backwards = net.in_channels(v).iter().map(|&c| net.channel(c).src);
        let forwards = net.out_channels(v).iter().map(|&c| net.channel(c).dst);
        for u in backwards.chain(forwards) {
            if !reach[u.idx()] {
                reach[u.idx()] = true;
                if net.is_switch(u) {
                    queue.push(u);
                }
            }
        }
    }
    reach
}

/// Walk from `s` toward `d` as long as exactly one out-channel makes
/// progress — progress meaning its head still reaches `d` by a *simple*
/// continuation (avoiding every node already on the walk; a head that
/// can only reach `d` back through the walk offers no real choice). A
/// fully forced walk pins its dependency edges into every routing that
/// serves the pair; any genuine branching point ends the obligation and
/// the pair contributes nothing.
fn collect_forced_edges(net: &Network, s: NodeId, d: NodeId, forced: &mut FxHashSet<(u32, u32)>) {
    let mut cur = s;
    let mut prev: Option<ChannelId> = None;
    let mut pending: Vec<(u32, u32)> = Vec::new();
    let mut visited = FxHashSet::default();
    visited.insert(s);
    while cur != d {
        let reach = directed_reach_avoiding(net, d, &visited);
        let mut usable = net.out_channels(cur).iter().copied().filter(|&c| {
            let head = net.channel(c).dst;
            reach[head.idx()] && (head == d || net.is_switch(head))
        });
        let (Some(c), None) = (usable.next(), usable.next()) else {
            return; // a choice exists (or none) — nothing is forced
        };
        let head = net.channel(c).dst;
        visited.insert(head);
        if let Some(p) = prev {
            pending.push((p.0, c.0));
        }
        prev = Some(c);
        cur = head;
    }
    forced.extend(pending);
}

/// [`directed_reach_to`] restricted to paths that dodge `avoid`
/// (`d` itself is assumed not to be avoided).
fn directed_reach_avoiding(net: &Network, d: NodeId, avoid: &FxHashSet<NodeId>) -> Vec<bool> {
    let mut reach = vec![false; net.num_nodes()];
    reach[d.idx()] = true;
    let mut queue = vec![d];
    while let Some(v) = queue.pop() {
        for &c in net.in_channels(v) {
            let u = net.channel(c).src;
            if !reach[u.idx()] && !avoid.contains(&u) {
                reach[u.idx()] = true;
                if net.is_switch(u) {
                    queue.push(u);
                }
            }
        }
    }
    reach
}

/// The up*/down* existence certificate: a BFS orientation of the
/// bidirected subgraph, self-checked for acyclicity of its allowed
/// dependency graph.
struct Certificate {
    /// One BFS root per bidirected switch component.
    roots: Vec<NodeId>,
    /// Switch component index, `usize::MAX` off the bidirected subgraph.
    comp: Vec<usize>,
    /// BFS depth within the component (switches only).
    depth: Vec<u32>,
    /// Whether the allowed-dependency acyclicity self-check passed; if
    /// not, the certificate covers nothing (conservative).
    valid: bool,
}

impl Certificate {
    fn build(net: &Network) -> Certificate {
        let n = net.num_nodes();
        let mut comp = vec![usize::MAX; n];
        let mut depth = vec![u32::MAX; n];
        let mut roots = Vec::new();

        // Components and depths over bidirected switch-switch links.
        for &root in net.switches() {
            if comp[root.idx()] != usize::MAX {
                continue;
            }
            let cid = roots.len();
            roots.push(root);
            comp[root.idx()] = cid;
            depth[root.idx()] = 0;
            let mut queue = std::collections::VecDeque::from([root]);
            while let Some(u) = queue.pop_front() {
                for &c in net.out_channels(u) {
                    let v = net.channel(c).dst;
                    if net.is_switch(v) && paired(net, c) && comp[v.idx()] == usize::MAX {
                        comp[v.idx()] = cid;
                        depth[v.idx()] = depth[u.idx()] + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        // Terminals hang one level below their (unique-component) switch.
        // A terminal cabled into several components keeps MAX and is
        // handled pairwise in `covers` via its attachment list.
        for &t in net.terminals() {
            let mut attached: Option<(usize, u32)> = None;
            let mut multi = false;
            for &c in net.out_channels(t) {
                let v = net.channel(c).dst;
                if net.is_switch(v) && paired(net, c) && comp[v.idx()] != usize::MAX {
                    match attached {
                        None => attached = Some((comp[v.idx()], depth[v.idx()] + 1)),
                        Some((cid, ref mut dep)) if cid == comp[v.idx()] => {
                            *dep = (*dep).min(depth[v.idx()] + 1);
                        }
                        Some(_) => multi = true,
                    }
                }
            }
            if let (Some((cid, dep)), false) = (attached, multi) {
                comp[t.idx()] = cid;
                depth[t.idx()] = dep;
            }
        }

        let mut cert = Certificate {
            roots,
            comp,
            depth,
            valid: false,
        };
        cert.valid = cert.allowed_graph_is_acyclic(net);
        cert
    }

    /// (depth, id) order within a component; `None` when the node has
    /// no single home component.
    fn ord(&self, v: NodeId) -> Option<(u32, u32)> {
        (self.comp[v.idx()] != usize::MAX).then(|| (self.depth[v.idx()], v.0))
    }

    /// `true` when the channel ascends toward its component's root.
    fn is_up(&self, net: &Network, c: ChannelId) -> Option<bool> {
        let ch = net.channel(c);
        if self.comp[ch.src.idx()] != self.comp[ch.dst.idx()] {
            return None;
        }
        Some(self.ord(ch.dst)? < self.ord(ch.src)?)
    }

    /// Self-check: the dependency edges up*/down* permits — every
    /// chain except a down-channel feeding an up-channel — must be
    /// acyclic, or the orientation proves nothing.
    fn allowed_graph_is_acyclic(&self, net: &Network) -> bool {
        let mut allowed: FxHashSet<(u32, u32)> = FxHashSet::default();
        for &v in net.switches() {
            for &a in net.in_channels(v) {
                let Some(a_up) = self.is_up(net, a) else {
                    continue;
                };
                for &b in net.out_channels(v) {
                    let Some(b_up) = self.is_up(net, b) else {
                        continue;
                    };
                    if a_up || !b_up {
                        allowed.insert((a.0, b.0));
                    }
                }
            }
        }
        cdg_lint::find_cycle(net.num_channels(), &allowed).is_none()
    }

    /// Does the certificate cover the ordered pair `(s, d)`? Yes when
    /// the self-check passed and either both live under one root (an
    /// up-then-down path connects them) or a bidirected link joins
    /// them directly (a single hop has no dependencies).
    fn covers(&self, net: &Network, s: NodeId, d: NodeId) -> bool {
        if !self.valid {
            return false;
        }
        if self.comp[s.idx()] != usize::MAX && self.comp[s.idx()] == self.comp[d.idx()] {
            return true;
        }
        net.channel_between(s, d).is_some_and(|c| paired(net, c))
    }
}

/// Does the reverse channel exist? Bidirected channels are the raw
/// material of the up*/down* certificate.
fn paired(net: &Network, c: ChannelId) -> bool {
    let ch = net.channel(c);
    net.channel_between(ch.dst, ch.src).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::NetworkBuilder;

    /// t0 - s0 - s1 - t1 with everything bidirected.
    fn healthy_line() -> Network {
        let mut b = NetworkBuilder::new();
        let s0 = b.add_switch("s0", 4);
        let s1 = b.add_switch("s1", 4);
        let t0 = b.add_terminal("t0");
        let t1 = b.add_terminal("t1");
        b.link(s0, s1).unwrap();
        b.link(t0, s0).unwrap();
        b.link(t1, s1).unwrap();
        b.build()
    }

    #[test]
    fn healthy_line_is_certified() {
        let v = existence(&healthy_line());
        let Existence::Exists { roots, pairs } = v else {
            panic!("expected a certificate, got {v:?}");
        };
        assert_eq!(roots.len(), 1);
        assert_eq!(pairs, 2);
    }

    #[test]
    fn one_way_degradation_is_refuted() {
        // t0 - s0 = s1 - t1 where the s1 -> s0 direction is dead.
        let mut b = NetworkBuilder::new();
        let s0 = b.add_switch("s0", 4);
        let s1 = b.add_switch("s1", 4);
        let t0 = b.add_terminal("t0");
        let t1 = b.add_terminal("t1");
        b.add_channel(s0, s1).unwrap();
        b.link(t0, s0).unwrap();
        b.link(t1, s1).unwrap();
        let net = b.build();
        let v = existence(&net);
        assert_eq!(
            v,
            Existence::NotExists(ExistenceWitness::OneWayPair { src: t1, dst: t0 })
        );
    }

    #[test]
    fn unidirectional_ring_forces_a_cycle() {
        // Switches cabled clockwise-only: every pair has exactly one
        // path, and the forced dependencies close the ring.
        let mut b = NetworkBuilder::new();
        let s: Vec<_> = (0..4).map(|i| b.add_switch(format!("s{i}"), 4)).collect();
        let t: Vec<_> = (0..4).map(|i| b.add_terminal(format!("t{i}"))).collect();
        for i in 0..4 {
            b.add_channel(s[i], s[(i + 1) % 4]).unwrap();
            b.link(t[i], s[i]).unwrap();
        }
        let net = b.build();
        let v = existence(&net);
        let Existence::NotExists(ExistenceWitness::ForcedCycle { channels }) = v else {
            panic!("expected a forced cycle, got {v:?}");
        };
        assert!(!channels.is_empty());
        // The witness chains head-to-tail and closes.
        for w in channels.windows(2) {
            assert_eq!(net.channel(w[0]).dst, net.channel(w[1]).src);
        }
        assert_eq!(
            net.channel(*channels.last().unwrap()).dst,
            net.channel(channels[0]).src
        );
    }

    #[test]
    fn bidirected_ring_is_certified_despite_cycles_in_the_graph() {
        // A healthy ring has cyclic channel dependencies available, but
        // up*/down* avoids them: existence holds.
        let mut b = NetworkBuilder::new();
        let s: Vec<_> = (0..4).map(|i| b.add_switch(format!("s{i}"), 4)).collect();
        let t: Vec<_> = (0..4).map(|i| b.add_terminal(format!("t{i}"))).collect();
        for i in 0..4 {
            b.link(s[i], s[(i + 1) % 4]).unwrap();
            b.link(t[i], s[i]).unwrap();
        }
        let v = existence(&b.build());
        assert!(matches!(v, Existence::Exists { pairs: 12, .. }), "{v:?}");
    }

    #[test]
    fn split_fabric_certifies_each_island() {
        // Two disconnected islands: pairs across are not required, each
        // island certifies on its own root.
        let mut b = NetworkBuilder::new();
        let s0 = b.add_switch("s0", 4);
        let s1 = b.add_switch("s1", 4);
        let t: Vec<_> = (0..4).map(|i| b.add_terminal(format!("t{i}"))).collect();
        b.link(t[0], s0).unwrap();
        b.link(t[1], s0).unwrap();
        b.link(t[2], s1).unwrap();
        b.link(t[3], s1).unwrap();
        let v = existence(&b.build());
        let Existence::Exists { roots, pairs } = v else {
            panic!("expected per-island certificates, got {v:?}");
        };
        assert_eq!(roots.len(), 2);
        assert_eq!(pairs, 4, "two ordered pairs per island");
    }

    #[test]
    fn directed_only_detour_is_undecided() {
        // s0 and s1 joined by one-way rings through two relay switches:
        // both directions are reachable (no one-way pair) and the
        // forced dependencies do not close a cycle, but the bidirected
        // certificate cannot order the relay channels — Undecided.
        let mut b = NetworkBuilder::new();
        let s0 = b.add_switch("s0", 4);
        let s1 = b.add_switch("s1", 4);
        let ra = b.add_switch("ra", 4);
        let rb = b.add_switch("rb", 4);
        let t0 = b.add_terminal("t0");
        let t1 = b.add_terminal("t1");
        b.link(t0, s0).unwrap();
        b.link(t1, s1).unwrap();
        b.add_channel(s0, ra).unwrap();
        b.add_channel(ra, s1).unwrap();
        b.add_channel(s1, rb).unwrap();
        b.add_channel(rb, s0).unwrap();
        let v = existence(&b.build());
        assert!(matches!(v, Existence::Undecided { .. }), "{v:?}");
    }

    #[test]
    fn single_terminal_is_vacuously_deadlock_free() {
        let mut b = NetworkBuilder::new();
        let s0 = b.add_switch("s0", 4);
        let t0 = b.add_terminal("t0");
        b.link(t0, s0).unwrap();
        assert!(matches!(
            existence(&b.build()),
            Existence::Exists { pairs: 0, .. }
        ));
    }

    /// Acceptance: V007 stays silent (certifies) on every healthy example
    /// topology. The one honest exception is the directed Kautz graph,
    /// whose antiparallel detours the forced-walk cannot certify or
    /// refute — it must land on `Undecided`, never `NotExists`.
    #[test]
    fn example_topologies_stay_silent() {
        use fabric::topo;
        let healthy: Vec<(&str, Network)> = vec![
            ("ring", topo::ring(8, 1)),
            ("star", topo::star(6)),
            ("fully-connected", topo::fully_connected(5, 1)),
            ("mesh", topo::mesh(&[3, 3], 1)),
            ("torus", topo::torus(&[4, 4], 1)),
            ("hypercube", topo::hypercube(3, 1)),
            ("kary-ntree", topo::kary_ntree(2, 3)),
            ("xgft", topo::xgft(2, &[4, 4], &[1, 2])),
            ("dragonfly", topo::dragonfly(4, 2, 2)),
            ("kautz-bidirected", topo::kautz(2, 3, 24, true)),
            (
                "random",
                topo::random_topology(
                    &topo::RandomTopoSpec {
                        switches: 8,
                        radix: 8,
                        terminals_per_switch: 2,
                        interswitch_links: 12,
                    },
                    42,
                ),
            ),
        ];
        for (name, net) in &healthy {
            let v = existence(net);
            assert!(
                matches!(v, Existence::Exists { .. }),
                "{name}: expected a certificate, got {v:?}"
            );
        }
        let v = existence(&topo::kautz(2, 3, 24, false));
        assert!(
            matches!(v, Existence::Undecided { .. }),
            "directed kautz: expected undecided, got {v:?}"
        );
    }
}
