//! Diagnostic model: lint codes, severities, witnesses, and the report a
//! [`crate::analyze`] run produces.

use fabric::{ChannelId, NodeId};
use serde::{Deserialize, Serialize};

/// Stable identifier of one lint. The numeric codes are part of the tool's
/// interface (CI greps for them; docs list them) — never renumber.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum LintCode {
    /// `V001`: walking the forwarding tables toward some destination
    /// revisits a node — packets cycle forever.
    ForwardingLoop,
    /// `V002`: a (node, destination) pair has no programmed next hop.
    MissingEntry,
    /// `V003`: a programmed next hop is unusable — the channel id is out
    /// of range (e.g. stale tables after a topology rebuild), does not
    /// originate at the node holding the entry, or enters a terminal that
    /// cannot forward.
    InvalidNextHop,
    /// `V004`: a virtual layer's channel dependency graph has a cycle, so
    /// the Dally & Seitz deadlock-freedom condition is violated.
    CdgCycle,
    /// `V005`: virtual-layer assignment problems — a path's layer is out
    /// of range, the layer count exceeds the hardware VL limit, or the
    /// layer population is badly imbalanced.
    VlOutOfRange,
    /// `V006`: a pair is routed over more hops than the shortest path.
    NonMinimalPath,
    /// `V007`: the *fabric itself* (not any particular artifact) fails —
    /// or cannot be certified to satisfy — the deadlock-free-routing
    /// existence condition of Mendlovic & Matias (arXiv:2503.04583): no
    /// assignment of paths on a single virtual layer can connect the
    /// required terminal pairs with an acyclic channel dependency graph.
    DeadlockExistence,
}

impl LintCode {
    /// All codes, in numeric order. `counts` arrays index by this order.
    pub const ALL: [LintCode; 7] = [
        LintCode::ForwardingLoop,
        LintCode::MissingEntry,
        LintCode::InvalidNextHop,
        LintCode::CdgCycle,
        LintCode::VlOutOfRange,
        LintCode::NonMinimalPath,
        LintCode::DeadlockExistence,
    ];

    /// The stable `V00x` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::ForwardingLoop => "V001",
            LintCode::MissingEntry => "V002",
            LintCode::InvalidNextHop => "V003",
            LintCode::CdgCycle => "V004",
            LintCode::VlOutOfRange => "V005",
            LintCode::NonMinimalPath => "V006",
            LintCode::DeadlockExistence => "V007",
        }
    }

    /// Short kebab-case name, matching the docs table.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::ForwardingLoop => "forwarding-loop",
            LintCode::MissingEntry => "missing-entry",
            LintCode::InvalidNextHop => "invalid-next-hop",
            LintCode::CdgCycle => "cdg-cycle",
            LintCode::VlOutOfRange => "vl-out-of-range",
            LintCode::NonMinimalPath => "non-minimal-path",
            LintCode::DeadlockExistence => "deadlock-existence",
        }
    }

    /// Position within [`LintCode::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            LintCode::ForwardingLoop => 0,
            LintCode::MissingEntry => 1,
            LintCode::InvalidNextHop => 2,
            LintCode::CdgCycle => 3,
            LintCode::VlOutOfRange => 4,
            LintCode::NonMinimalPath => 5,
            LintCode::DeadlockExistence => 6,
        }
    }
}

impl std::fmt::Display for LintCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.as_str(), self.name())
    }
}

/// How bad a finding is. `Error` findings make the `vet` binary exit
/// non-zero; `Warning` and `Info` are advisory.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl Severity {
    /// Position within per-severity count arrays (info, warning, error).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Severity::Info => 0,
            Severity::Warning => 1,
            Severity::Error => 2,
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// Machine-checkable evidence attached to a diagnostic. Every lint has a
/// witness shape that lets a reader (or a test) reproduce the finding
/// without re-running the analysis.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Witness {
    /// V001: the channel cycle a table walk toward `dst` falls into.
    /// Consecutive channels chain head-to-tail and the last feeds the
    /// first; never empty.
    TableLoop {
        dst: NodeId,
        channels: Vec<ChannelId>,
    },
    /// V002: the (node, destination) pair lacking an entry.
    Entry { node: NodeId, dst: NodeId },
    /// V003: the raw channel value programmed at `node` toward `dst`
    /// (kept as `u32` — it may not be a valid [`ChannelId`]).
    NextHop {
        node: NodeId,
        dst: NodeId,
        channel: u32,
    },
    /// V003 (shape variant): the artifact was sized for a different
    /// network than the one being vetted.
    Shape {
        table_nodes: usize,
        net_nodes: usize,
        table_terminals: usize,
        net_terminals: usize,
    },
    /// V004: the channel cycle inside one layer's dependency graph.
    /// Consecutive channels chain head-to-tail and the last feeds the
    /// first; never empty.
    CdgCycle { layer: u8, channels: Vec<ChannelId> },
    /// V005: the terminal pair whose layer assignment is out of range.
    Layer { src: NodeId, dst: NodeId, layer: u8 },
    /// V005 (imbalance / hardware-limit variants): routed paths per layer.
    LayerHistogram { populations: Vec<usize> },
    /// V006: the offending pair with its routed and minimal hop counts.
    Stretch {
        src: NodeId,
        dst: NodeId,
        hops: u32,
        minimal: u32,
    },
    /// V007: a terminal pair connected by the fabric in one direction but
    /// not the other (a half-dead cable, say) — no routing of any kind,
    /// deadlock-free or not, can serve it.
    OneWayPair { src: NodeId, dst: NodeId },
    /// V007: dependency edges *forced* by pairs whose only path through
    /// the fabric is unique close a cycle. Every single-layer routing
    /// must contain each forced edge, so every one violates Dally &
    /// Seitz: no deadlock-free routing exists on one layer. Consecutive
    /// channels chain head-to-tail and the last feeds the first.
    ForcedCycle { channels: Vec<ChannelId> },
    /// V007 (undecided): the pair the certificate could not cover — it
    /// is routable, but only over channels the up*/down* orientation
    /// cannot order (directed-only links), and no refutation was found.
    UncertifiedPair { src: NodeId, dst: NodeId },
}

/// One finding: a lint code, its severity, a human message and a witness.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Diagnostic {
    pub code: LintCode,
    pub severity: Severity,
    pub message: String,
    pub witness: Witness,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} {}: {}",
            self.code.as_str(),
            self.severity,
            self.code.name(),
            self.message
        )
    }
}

/// Aggregate facts about the artifact, computed alongside the lints.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Stats {
    pub num_nodes: usize,
    pub num_switches: usize,
    pub num_terminals: usize,
    pub num_channels: usize,
    /// Ordered terminal pairs with distinct endpoints.
    pub pairs: usize,
    /// Pairs whose table walk reaches the destination.
    pub pairs_routed: usize,
    /// Pairs broken by a loop, missing entry or invalid next hop.
    pub pairs_broken: usize,
    /// Pairs with no physical path (expected to be unrouted).
    pub pairs_unreachable: usize,
    pub num_layers: u8,
    /// Routed paths assigned to each virtual layer.
    pub paths_per_layer: Vec<usize>,
    /// Dependency-graph edges per virtual layer.
    pub edges_per_layer: Vec<usize>,
    /// Layers whose dependency graph is cyclic, ascending.
    pub cyclic_layers: Vec<u8>,
    /// Longest routed path, in hops.
    pub max_hops: u32,
    /// Sample of terminal pairs whose table walk failed (broken or
    /// unreachable), capped at [`Stats::BROKEN_PAIR_SAMPLE`] entries.
    pub broken_pairs: Vec<(NodeId, NodeId)>,
    /// V007 verdict summary when the existence check ran: what the
    /// certificate proved (or why it couldn't), in one line.
    pub existence: Option<String>,
}

impl Stats {
    /// Cap on the [`Stats::broken_pairs`] sample.
    pub const BROKEN_PAIR_SAMPLE: usize = 16;
}

/// The outcome of one [`crate::analyze`] run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Report {
    /// Engine name recorded in the routes artifact.
    pub engine: String,
    /// Topology label of the vetted network.
    pub network: String,
    pub stats: Stats,
    /// Retained diagnostics (per-code capped; see `suppressed`).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings per lint code, indexed like [`LintCode::ALL`]. Counts
    /// include suppressed findings.
    pub counts: [usize; 7],
    /// Findings per severity (info, warning, error), including suppressed.
    pub severity_counts: [usize; 3],
    /// Findings dropped by the per-code diagnostic cap.
    pub suppressed: usize,
}

impl Report {
    /// Total findings for `code`, including suppressed ones.
    #[inline]
    pub fn count(&self, code: LintCode) -> usize {
        self.counts[code.index()]
    }

    /// Whether any finding with `code` was emitted.
    #[inline]
    pub fn has(&self, code: LintCode) -> bool {
        self.count(code) > 0
    }

    /// Number of error-severity findings.
    #[inline]
    pub fn num_errors(&self) -> usize {
        self.severity_counts[Severity::Error.index()]
    }

    /// Number of warning-severity findings.
    #[inline]
    pub fn num_warnings(&self) -> usize {
        self.severity_counts[Severity::Warning.index()]
    }

    /// Whether the artifact passed: no error-severity findings.
    #[inline]
    pub fn clean(&self) -> bool {
        self.num_errors() == 0
    }

    /// Retained diagnostics carrying `code`.
    pub fn diagnostics_for(&self, code: LintCode) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Multi-line human rendering (what the `vet` binary prints).
    pub fn render_human(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let s = &self.stats;
        let _ = writeln!(
            out,
            "vet: engine={} network={} nodes={} ({} switches, {} terminals) channels={} layers={}",
            self.engine,
            self.network,
            s.num_nodes,
            s.num_switches,
            s.num_terminals,
            s.num_channels,
            s.num_layers,
        );
        let _ = writeln!(
            out,
            "     pairs: {} routed, {} broken, {} unreachable of {}; max path {} hops",
            s.pairs_routed, s.pairs_broken, s.pairs_unreachable, s.pairs, s.max_hops,
        );
        for d in &self.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
        let _ = write!(
            out,
            "summary: {} error(s), {} warning(s), {} info",
            self.num_errors(),
            self.num_warnings(),
            self.severity_counts[Severity::Info.index()],
        );
        if self.suppressed > 0 {
            let _ = write!(
                out,
                " ({} finding(s) suppressed by per-code cap)",
                self.suppressed
            );
        }
        out.push('\n');
        out
    }

    /// JSON rendering of the full report.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

/// Collects diagnostics during analysis, enforcing the per-code cap.
pub(crate) struct Emitter {
    pub diagnostics: Vec<Diagnostic>,
    pub counts: [usize; 7],
    pub severity_counts: [usize; 3],
    pub suppressed: usize,
    cap: usize,
}

impl Emitter {
    pub fn new(cap: usize) -> Self {
        Emitter {
            diagnostics: Vec::new(),
            counts: [0; 7],
            severity_counts: [0; 3],
            suppressed: 0,
            cap,
        }
    }

    pub fn emit(&mut self, code: LintCode, severity: Severity, message: String, witness: Witness) {
        self.counts[code.index()] += 1;
        self.severity_counts[severity.index()] += 1;
        if self.counts[code.index()] > self.cap {
            self.suppressed += 1;
            return;
        }
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            message,
            witness,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_indexed() {
        for (i, code) in LintCode::ALL.iter().enumerate() {
            assert_eq!(code.index(), i);
            assert_eq!(code.as_str(), format!("V{:03}", i + 1));
        }
    }

    #[test]
    fn emitter_caps_per_code() {
        let mut e = Emitter::new(2);
        for i in 0..5 {
            e.emit(
                LintCode::MissingEntry,
                Severity::Error,
                format!("missing {i}"),
                Witness::Entry {
                    node: NodeId(i),
                    dst: NodeId(0),
                },
            );
        }
        e.emit(
            LintCode::ForwardingLoop,
            Severity::Warning,
            "loop".into(),
            Witness::TableLoop {
                dst: NodeId(0),
                channels: vec![ChannelId(0)],
            },
        );
        assert_eq!(e.counts[LintCode::MissingEntry.index()], 5);
        assert_eq!(e.suppressed, 3);
        assert_eq!(e.diagnostics.len(), 3); // 2 capped + 1 loop
        assert_eq!(e.severity_counts[Severity::Error.index()], 5);
        assert_eq!(e.severity_counts[Severity::Warning.index()], 1);
    }
}
