//! `vet` — static analysis of routing artifacts.
//!
//! Routing engines produce `(Network, Routes)` pairs; simulators consume
//! them. This crate sits between: it lints an artifact *without*
//! simulating, emitting structured diagnostics with machine-checkable
//! witnesses. The checks:
//!
//! | code | name | what it catches |
//! |------|------|-----------------|
//! | V001 | forwarding-loop | table walks that revisit a node |
//! | V002 | missing-entry | (node, destination) pairs with no next hop |
//! | V003 | invalid-next-hop | entries naming unusable channels |
//! | V004 | cdg-cycle | cyclic channel dependencies within a layer |
//! | V005 | vl-out-of-range | layer assignment out of range / over the hardware limit / imbalanced |
//! | V006 | non-minimal-path | routes longer than the shortest path |
//! | V007 | deadlock-existence | fabrics where *no* single-layer deadlock-free routing can exist |
//!
//! The analysis is destination-centric: one colored walk of the next-hop
//! function per destination classifies every node in O(V), instead of
//! re-walking each of the O(V²) pairs. See [`analyze`] and [`Report`].
//!
//! V001–V006 judge the artifact; V007 judges the *network* (see
//! [`existence`] and the [`existence()`][fn@existence] decision
//! procedure): after degradation, can any reroute on one virtual layer
//! still be deadlock-free? Its verdict gates admission upstream — an
//! Error here means escalate (extra layer, quarantine), not reroute.

mod cdg_lint;
mod diag;
mod existence;
mod walk;

pub use diag::{Diagnostic, LintCode, Report, Severity, Stats, Witness};
pub use existence::{existence, Existence, ExistenceWitness};

use fabric::{ChannelId, Network, Routes};
use rustc_hash::FxHashSet;

/// Tunables for one analysis run.
#[derive(Clone, Debug)]
pub struct Config {
    /// Hardware virtual-lane budget (InfiniBand switches commonly expose
    /// 8). When set, using more layers than this is a V005 error.
    pub hw_vls: Option<u8>,
    /// Whether a cyclic dependency graph (V004) is an error. Engines that
    /// never claimed deadlock freedom (plain SSSP) can downgrade it to a
    /// warning.
    pub deadlock_error: bool,
    /// Whether to emit V006 for non-minimal routes. Engines that are
    /// non-minimal by design (Up*/Down*) can switch it off.
    pub check_minimal: bool,
    /// V005 imbalance warning threshold: fires when the most-populated
    /// layer holds more than `imbalance_factor` times the mean.
    pub imbalance_factor: f64,
    /// Retain at most this many diagnostics per lint code; the rest are
    /// counted but dropped (see [`Report::suppressed`]).
    pub max_diagnostics_per_code: usize,
    /// Whether to run the V007 existence check ([`existence`]): does the
    /// fabric itself still admit *some* single-layer deadlock-free
    /// routing? `NotExists` is an error with a concrete witness,
    /// `Undecided` a warning, `Exists` records its certificate in
    /// [`Stats::existence`].
    pub check_existence: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            hw_vls: None,
            deadlock_error: true,
            check_minimal: true,
            imbalance_factor: 4.0,
            max_diagnostics_per_code: 25,
            check_existence: true,
        }
    }
}

/// Analyze `routes` against `net` with default settings.
pub fn analyze(net: &Network, routes: &Routes) -> Report {
    analyze_with(net, routes, &Config::default())
}

/// [`analyze`] under the name the workspace prelude exports (`use
/// dfsssp::prelude::*; vet::check(&net, &routes)`).
pub fn check(net: &Network, routes: &Routes) -> Report {
    analyze(net, routes)
}

/// Analyze `routes` against `net` with explicit settings.
pub fn analyze_with(net: &Network, routes: &Routes, cfg: &Config) -> Report {
    let mut em = diag::Emitter::new(cfg.max_diagnostics_per_code);
    let mut stats = Stats {
        num_nodes: net.num_nodes(),
        num_switches: net.num_switches(),
        num_terminals: net.num_terminals(),
        num_channels: net.num_channels(),
        num_layers: routes.num_layers(),
        ..Stats::default()
    };

    // Shape guard: tables sized for a different network cannot be indexed
    // safely — one V003 and out (degraded fabrics renumber everything).
    if routes.num_nodes() != net.num_nodes() || routes.num_terminals() != net.num_terminals() {
        em.emit(
            LintCode::InvalidNextHop,
            Severity::Error,
            format!(
                "tables sized for {} node(s) / {} terminal(s), network has {} / {} — \
                 artifact does not match this network",
                routes.num_nodes(),
                routes.num_terminals(),
                net.num_nodes(),
                net.num_terminals()
            ),
            Witness::Shape {
                table_nodes: routes.num_nodes(),
                net_nodes: net.num_nodes(),
                table_terminals: routes.num_terminals(),
                net_terminals: net.num_terminals(),
            },
        );
        return finish(net, routes, em, stats);
    }

    let walked = walk::walk_tables(net, routes, cfg, &mut em);
    stats.pairs = walked.pairs;
    stats.pairs_routed = walked.pairs_routed;
    stats.pairs_broken = walked.pairs_broken;
    stats.pairs_unreachable = walked.pairs_unreachable;
    stats.max_hops = walked.max_hops;
    stats.paths_per_layer = walked.paths_per_layer;
    stats.edges_per_layer = walked.edges.iter().map(|e| e.len()).collect();
    stats.broken_pairs = walked.broken_pairs;

    // V004: Dally & Seitz — every layer's dependency graph must be acyclic.
    let cdg_sev = if cfg.deadlock_error {
        Severity::Error
    } else {
        Severity::Warning
    };
    for (layer, edges) in walked.edges.iter().enumerate() {
        if let Some(channels) = cdg_lint::find_cycle(net.num_channels(), edges) {
            stats.cyclic_layers.push(layer as u8);
            em.emit(
                LintCode::CdgCycle,
                cdg_sev,
                format!(
                    "layer {layer} channel dependency graph has a cycle of {} channel(s) — \
                     routes on this layer can deadlock",
                    channels.len()
                ),
                Witness::CdgCycle {
                    layer: layer as u8,
                    channels,
                },
            );
        }
    }

    // V005 summary checks: hardware budget and population balance.
    if let Some(hw) = cfg.hw_vls {
        if routes.num_layers() > hw {
            em.emit(
                LintCode::VlOutOfRange,
                Severity::Error,
                format!(
                    "routes use {} virtual layers but the hardware provides {hw} VLs",
                    routes.num_layers()
                ),
                Witness::LayerHistogram {
                    populations: stats.paths_per_layer.clone(),
                },
            );
        }
    }
    if stats.num_layers > 1 && stats.pairs_routed > 0 {
        let max = *stats.paths_per_layer.iter().max().unwrap_or(&0);
        let mean = stats.pairs_routed as f64 / stats.num_layers as f64;
        if max as f64 > cfg.imbalance_factor * mean {
            em.emit(
                LintCode::VlOutOfRange,
                Severity::Warning,
                format!(
                    "layer population imbalanced: busiest layer carries {max} of {} routed \
                     path(s) across {} layers (mean {mean:.1})",
                    stats.pairs_routed, stats.num_layers
                ),
                Witness::LayerHistogram {
                    populations: stats.paths_per_layer.clone(),
                },
            );
        }
    }

    // V007: Mendlovic & Matias — does the fabric still admit *any*
    // single-layer deadlock-free routing? A network-level verdict: the
    // artifact under analysis neither helps nor hurts it. A refutation
    // condemns *single-layer* artifacts outright; an artifact already
    // on multiple layers took the one escape hatch the theorem leaves
    // open, so for it the refutation is a (citable) warning that the
    // extra layers are provably necessary, not optional.
    if cfg.check_existence {
        let refuted_sev = if routes.num_layers() <= 1 {
            Severity::Error
        } else {
            Severity::Warning
        };
        match existence::existence(net) {
            Existence::Exists { roots, pairs } => {
                stats.existence = Some(format!(
                    "certified: up*/down* orientation from {} root(s) covers all {pairs} \
                     required pair(s) with an acyclic dependency graph",
                    roots.len()
                ));
            }
            Existence::NotExists(ExistenceWitness::OneWayPair { src, dst }) => {
                stats.existence = Some(format!("refuted: one-way pair {src:?} -> {dst:?}"));
                em.emit(
                    LintCode::DeadlockExistence,
                    // One-way pairs are unservable at *any* layer count.
                    Severity::Error,
                    format!(
                        "no routing can serve {src:?} -> {dst:?}: the pair is cabled but \
                         directed reachability holds only the other way (half-dead link?)"
                    ),
                    Witness::OneWayPair { src, dst },
                );
            }
            Existence::NotExists(ExistenceWitness::ForcedCycle { channels }) => {
                stats.existence = Some(format!(
                    "refuted: forced dependency cycle of {} channel(s)",
                    channels.len()
                ));
                em.emit(
                    LintCode::DeadlockExistence,
                    refuted_sev,
                    format!(
                        "no single-layer deadlock-free routing exists: unique paths force a \
                         dependency cycle of {} channel(s) into every routing{}",
                        channels.len(),
                        if refuted_sev == Severity::Warning {
                            format!(
                                " (this artifact's {} layers are provably necessary)",
                                routes.num_layers()
                            )
                        } else {
                            String::new()
                        }
                    ),
                    Witness::ForcedCycle { channels },
                );
            }
            Existence::Undecided { src, dst } => {
                stats.existence = Some(format!("undecided: pair {src:?} -> {dst:?} uncertified"));
                em.emit(
                    LintCode::DeadlockExistence,
                    Severity::Warning,
                    format!(
                        "existence of a single-layer deadlock-free routing is undecided: \
                         {src:?} -> {dst:?} is routable only over channels the up*/down* \
                         certificate cannot order"
                    ),
                    Witness::UncertifiedPair { src, dst },
                );
            }
        }
    }

    finish(net, routes, em, stats)
}

/// [`analyze_with`] restricted to a destination subset — the scoped
/// re-check incremental rerouting uses: only the listed destination
/// terminal indices' columns are walked (V001–V003, V006 over the
/// scope; V004 over the scope's dependency edges; the V005 hardware
/// budget and the network-level V007 judgement are global and run as
/// usual). Costs O(|dests| · V) instead of O(T · V).
///
/// The caller owns the claim that the unscoped columns are unchanged
/// since their last full analysis; this function verifies exactly the
/// scope it is given. Out-of-range indices are ignored; per-layer
/// population stats cover only the scope, so the layer-imbalance
/// heuristic is skipped (its denominators would be misleading).
pub fn analyze_scoped(net: &Network, routes: &Routes, dests: &[usize], cfg: &Config) -> Report {
    let mut em = diag::Emitter::new(cfg.max_diagnostics_per_code);
    let mut stats = Stats {
        num_nodes: net.num_nodes(),
        num_switches: net.num_switches(),
        num_terminals: net.num_terminals(),
        num_channels: net.num_channels(),
        num_layers: routes.num_layers(),
        ..Stats::default()
    };
    if routes.num_nodes() != net.num_nodes() || routes.num_terminals() != net.num_terminals() {
        em.emit(
            LintCode::InvalidNextHop,
            Severity::Error,
            format!(
                "tables sized for {} node(s) / {} terminal(s), network has {} / {} — \
                 artifact does not match this network",
                routes.num_nodes(),
                routes.num_terminals(),
                net.num_nodes(),
                net.num_terminals()
            ),
            Witness::Shape {
                table_nodes: routes.num_nodes(),
                net_nodes: net.num_nodes(),
                table_terminals: routes.num_terminals(),
                net_terminals: net.num_terminals(),
            },
        );
        return finish(net, routes, em, stats);
    }

    let walked = walk::walk_tables_scoped(net, routes, cfg, &mut em, Some(dests));
    stats.pairs = walked.pairs;
    stats.pairs_routed = walked.pairs_routed;
    stats.pairs_broken = walked.pairs_broken;
    stats.pairs_unreachable = walked.pairs_unreachable;
    stats.max_hops = walked.max_hops;
    stats.paths_per_layer = walked.paths_per_layer;
    stats.edges_per_layer = walked.edges.iter().map(|e| e.len()).collect();
    stats.broken_pairs = walked.broken_pairs;

    let cdg_sev = if cfg.deadlock_error {
        Severity::Error
    } else {
        Severity::Warning
    };
    for (layer, edges) in walked.edges.iter().enumerate() {
        if let Some(channels) = cdg_lint::find_cycle(net.num_channels(), edges) {
            stats.cyclic_layers.push(layer as u8);
            em.emit(
                LintCode::CdgCycle,
                cdg_sev,
                format!(
                    "layer {layer} channel dependency graph (scoped to {} destination(s)) \
                     has a cycle of {} channel(s) — routes on this layer can deadlock",
                    dests.len(),
                    channels.len()
                ),
                Witness::CdgCycle {
                    layer: layer as u8,
                    channels,
                },
            );
        }
    }

    if let Some(hw) = cfg.hw_vls {
        if routes.num_layers() > hw {
            em.emit(
                LintCode::VlOutOfRange,
                Severity::Error,
                format!(
                    "routes use {} virtual layers but the hardware provides {hw} VLs",
                    routes.num_layers()
                ),
                Witness::LayerHistogram {
                    populations: stats.paths_per_layer.clone(),
                },
            );
        }
    }

    if cfg.check_existence {
        scoped_existence(net, routes, &mut em, &mut stats);
    }

    finish(net, routes, em, stats)
}

/// The V007 judgement shared by [`analyze_scoped`]: network-level, so
/// scoping does not change what it looks at.
fn scoped_existence(net: &Network, routes: &Routes, em: &mut diag::Emitter, stats: &mut Stats) {
    let refuted_sev = if routes.num_layers() <= 1 {
        Severity::Error
    } else {
        Severity::Warning
    };
    match existence::existence(net) {
        Existence::Exists { roots, pairs } => {
            stats.existence = Some(format!(
                "certified: up*/down* orientation from {} root(s) covers all {pairs} \
                 required pair(s) with an acyclic dependency graph",
                roots.len()
            ));
        }
        Existence::NotExists(ExistenceWitness::OneWayPair { src, dst }) => {
            stats.existence = Some(format!("refuted: one-way pair {src:?} -> {dst:?}"));
            em.emit(
                LintCode::DeadlockExistence,
                Severity::Error,
                format!(
                    "no routing can serve {src:?} -> {dst:?}: the pair is cabled but \
                     directed reachability holds only the other way (half-dead link?)"
                ),
                Witness::OneWayPair { src, dst },
            );
        }
        Existence::NotExists(ExistenceWitness::ForcedCycle { channels }) => {
            stats.existence = Some(format!(
                "refuted: forced dependency cycle of {} channel(s)",
                channels.len()
            ));
            em.emit(
                LintCode::DeadlockExistence,
                refuted_sev,
                format!(
                    "no single-layer deadlock-free routing exists: unique paths force a \
                     dependency cycle of {} channel(s) into every routing{}",
                    channels.len(),
                    if refuted_sev == Severity::Warning {
                        format!(
                            " (this artifact's {} layers are provably necessary)",
                            routes.num_layers()
                        )
                    } else {
                        String::new()
                    }
                ),
                Witness::ForcedCycle { channels },
            );
        }
        Existence::Undecided { src, dst } => {
            stats.existence = Some(format!("undecided: pair {src:?} -> {dst:?} uncertified"));
            em.emit(
                LintCode::DeadlockExistence,
                Severity::Warning,
                format!(
                    "existence of a single-layer deadlock-free routing is undecided: \
                     {src:?} -> {dst:?} is routable only over channels the up*/down* \
                     certificate cannot order"
                ),
                Witness::UncertifiedPair { src, dst },
            );
        }
    }
}

/// The per-layer channel-dependency edge sets induced by walking
/// `routes`' tables on `net`, without emitting diagnostics — the raw
/// material for update-window hazard checks (see [`union_cycles`]).
/// Pairs that do not walk cleanly contribute no edges; an artifact sized
/// for a different network yields an empty vector.
pub fn dependency_edges(net: &Network, routes: &Routes) -> Vec<FxHashSet<(u32, u32)>> {
    if routes.num_nodes() != net.num_nodes() || routes.num_terminals() != net.num_terminals() {
        return Vec::new();
    }
    let cfg = Config {
        check_minimal: false,
        ..Config::default()
    };
    let mut em = diag::Emitter::new(0);
    walk::walk_tables(net, routes, &cfg, &mut em).edges
}

/// Check the union of several artifacts' per-layer CDGs for cycles.
///
/// This is the safety condition for an unsynchronized table-update
/// window: while switches are being reprogrammed from one artifact to
/// another, in-flight packets can follow any mix of the artifacts'
/// entries, so the dependencies of the *union* must satisfy Dally &
/// Seitz, not just each artifact's own. Layers are matched by index
/// (shorter artifacts simply contribute nothing to higher layers).
/// Returns each cyclic layer with a witness cycle.
pub fn union_cycles(net: &Network, artifacts: &[&Routes]) -> Vec<(u8, Vec<ChannelId>)> {
    let per_artifact: Vec<_> = artifacts.iter().map(|r| dependency_edges(net, r)).collect();
    let layers = per_artifact.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = Vec::new();
    for layer in 0..layers {
        let mut union: FxHashSet<(u32, u32)> = FxHashSet::default();
        for edges in &per_artifact {
            if let Some(e) = edges.get(layer) {
                union.extend(e.iter().copied());
            }
        }
        if let Some(channels) = cdg_lint::find_cycle(net.num_channels(), &union) {
            out.push((layer as u8, channels));
        }
    }
    out
}

fn finish(net: &Network, routes: &Routes, em: diag::Emitter, stats: Stats) -> Report {
    Report {
        engine: routes.engine().to_string(),
        network: net.label().to_string(),
        stats,
        diagnostics: em.diagnostics,
        counts: em.counts,
        severity_counts: em.severity_counts,
        suppressed: em.suppressed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::{ChannelId, Network, NetworkBuilder};

    /// t0 - s0 - s1 - t1, plus t2 on s1 (same shape as the fabric tests).
    fn line() -> Network {
        let mut b = NetworkBuilder::new();
        let s0 = b.add_switch("s0", 36);
        let s1 = b.add_switch("s1", 36);
        let t0 = b.add_terminal("t0");
        let t1 = b.add_terminal("t1");
        let t2 = b.add_terminal("t2");
        b.link(s0, s1).unwrap();
        b.link(t0, s0).unwrap();
        b.link(t1, s1).unwrap();
        b.link(t2, s1).unwrap();
        b.build()
    }

    fn bfs_routes(net: &Network) -> fabric::Routes {
        let mut r = fabric::Routes::new(net, "bfs-test");
        for (dst_t, &dst) in net.terminals().iter().enumerate() {
            let hops = net.hops_to(dst);
            for (id, _) in net.nodes() {
                if id == dst || hops[id.idx()] == u32::MAX {
                    continue;
                }
                let best = net
                    .out_channels(id)
                    .iter()
                    .copied()
                    .min_by_key(|&c| hops[net.channel(c).dst.idx()])
                    .unwrap();
                r.set_next(id, dst_t, best);
            }
        }
        r
    }

    #[test]
    fn clean_tables_produce_clean_report() {
        let net = line();
        let report = analyze(&net, &bfs_routes(&net));
        assert!(
            report.clean(),
            "unexpected findings: {:?}",
            report.diagnostics
        );
        assert_eq!(report.num_warnings(), 0);
        assert_eq!(report.stats.pairs, 6);
        assert_eq!(report.stats.pairs_routed, 6);
        assert_eq!(report.stats.pairs_broken, 0);
        assert_eq!(report.stats.max_hops, 3);
        assert_eq!(report.stats.paths_per_layer, vec![6]);
        assert_eq!(report.engine, "bfs-test");
    }

    #[test]
    fn dropped_entry_is_v002() {
        let net = line();
        let mut r = bfs_routes(&net);
        let s0 = net.node_by_name("s0").unwrap();
        r.clear_next(s0, 1); // s0 no longer knows about t1
        let report = analyze(&net, &r);
        assert!(report.has(LintCode::MissingEntry));
        assert!(!report.clean());
        // t0 -> t1 is the broken pair; t2 -> t1 does not cross s0.
        assert_eq!(report.stats.pairs_broken, 1);
        let d = report
            .diagnostics_for(LintCode::MissingEntry)
            .next()
            .unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert!(matches!(d.witness, Witness::Entry { node, .. } if node == s0));
    }

    #[test]
    fn unreachable_pairs_are_v002_warnings_not_errors() {
        // Two disconnected islands: t0-s0 and t1-s1. No table can route
        // across, so the missing entries are latent facts about the
        // fabric, not artifact bugs.
        let mut b = NetworkBuilder::new();
        let s0 = b.add_switch("s0", 4);
        let s1 = b.add_switch("s1", 4);
        let t0 = b.add_terminal("t0");
        let t1 = b.add_terminal("t1");
        b.link(t0, s0).unwrap();
        b.link(t1, s1).unwrap();
        let net = b.build();
        let report = analyze(&net, &bfs_routes(&net));
        assert!(report.has(LintCode::MissingEntry));
        assert!(report.clean(), "{:?}", report.diagnostics);
        assert!(report.num_warnings() > 0);
        assert_eq!(report.stats.pairs_unreachable, 2);
        assert_eq!(report.stats.pairs_broken, 0);
    }

    #[test]
    fn two_switch_loop_is_v001_with_witness() {
        let net = line();
        let mut r = bfs_routes(&net);
        let s0 = net.node_by_name("s0").unwrap();
        let s1 = net.node_by_name("s1").unwrap();
        // Route s1's traffic for t1 back to s0: s0 <-> s1 ping-pong.
        r.set_next(s1, 1, net.channel_between(s1, s0).unwrap());
        let report = analyze(&net, &r);
        assert!(report.has(LintCode::ForwardingLoop));
        let d = report
            .diagnostics_for(LintCode::ForwardingLoop)
            .next()
            .unwrap();
        let Witness::TableLoop { channels, .. } = &d.witness else {
            panic!("V001 must carry a TableLoop witness");
        };
        assert_eq!(channels.len(), 2);
        // The loop chains: each channel's head is the next channel's tail.
        for w in channels.windows(2) {
            assert_eq!(net.channel(w[0]).dst, net.channel(w[1]).src);
        }
        assert_eq!(
            net.channel(*channels.last().unwrap()).dst,
            net.channel(channels[0]).src
        );
    }

    #[test]
    fn garbage_channel_is_v003() {
        let net = line();
        let mut r = bfs_routes(&net);
        let s0 = net.node_by_name("s0").unwrap();
        r.set_next(s0, 1, ChannelId(9999));
        let report = analyze(&net, &r);
        assert!(report.has(LintCode::InvalidNextHop));
        assert!(!report.clean());
    }

    #[test]
    fn foreign_channel_is_v003() {
        let net = line();
        let mut r = bfs_routes(&net);
        let s0 = net.node_by_name("s0").unwrap();
        let s1 = net.node_by_name("s1").unwrap();
        let t1 = net.node_by_name("t1").unwrap();
        // A real channel, but it leaves s1, not s0.
        r.set_next(s0, 1, net.channel_between(s1, t1).unwrap());
        let report = analyze(&net, &r);
        let d = report
            .diagnostics_for(LintCode::InvalidNextHop)
            .next()
            .unwrap();
        assert!(matches!(d.witness, Witness::NextHop { node, .. } if node == s0));
    }

    #[test]
    fn shape_mismatch_is_a_single_v003() {
        let net = line();
        let routes = bfs_routes(&net);
        // Vet those tables against a *different* network.
        let mut b = NetworkBuilder::new();
        let s0 = b.add_switch("s0", 36);
        let t0 = b.add_terminal("t0");
        let t1 = b.add_terminal("t1");
        b.link(t0, s0).unwrap();
        b.link(t1, s0).unwrap();
        let other = b.build();
        let report = analyze(&other, &routes);
        assert_eq!(report.count(LintCode::InvalidNextHop), 1);
        assert!(!report.clean());
        assert!(matches!(
            report.diagnostics[0].witness,
            Witness::Shape { .. }
        ));
    }

    #[test]
    fn overflowing_hw_vls_is_v005() {
        let net = line();
        let mut r = bfs_routes(&net);
        r.set_layer(0, 1, 3); // forces num_layers to 4
        let cfg = Config {
            hw_vls: Some(2),
            ..Config::default()
        };
        let report = analyze_with(&net, &r, &cfg);
        assert!(report.has(LintCode::VlOutOfRange));
        assert!(!report.clean());
    }

    #[test]
    fn detour_is_v006_with_stretch_witness() {
        // Triangle a-c, a-d, d-c: the a -> d -> c detour is one hop longer
        // than a -> c.
        let mut b = NetworkBuilder::new();
        let a = b.add_switch("a", 36);
        let c = b.add_switch("c", 36);
        let d = b.add_switch("d", 36);
        let ta = b.add_terminal("ta");
        let tc = b.add_terminal("tc");
        b.link(a, c).unwrap();
        b.link(a, d).unwrap();
        b.link(d, c).unwrap();
        b.link(ta, a).unwrap();
        b.link(tc, c).unwrap();
        let net = b.build();
        let mut r = bfs_routes(&net);
        // ta -> a -> d -> c -> tc (4 hops) instead of ta -> a -> c -> tc.
        let tc_t = net.terminal_index(tc).unwrap();
        r.set_next(a, tc_t, net.channel_between(a, d).unwrap());
        let report = analyze(&net, &r);
        assert!(report.has(LintCode::NonMinimalPath));
        let diag = report
            .diagnostics_for(LintCode::NonMinimalPath)
            .next()
            .unwrap();
        let Witness::Stretch {
            src,
            dst,
            hops,
            minimal,
        } = diag.witness
        else {
            panic!("V006 must carry a Stretch witness");
        };
        assert_eq!((src, dst, hops, minimal), (ta, tc, 4, 3));
        // Non-minimal alone is a warning, not an error.
        assert!(report.clean());
        assert_eq!(report.num_warnings(), 1);
    }

    #[test]
    fn cdg_cycle_on_ring_is_v004_with_chained_witness() {
        // 4-switch unidirectional-ish ring routed the "wrong way" so layer
        // 0's dependencies close a cycle: route everything clockwise.
        let mut b = NetworkBuilder::new();
        let s: Vec<_> = (0..4).map(|i| b.add_switch(format!("s{i}"), 36)).collect();
        let t: Vec<_> = (0..4).map(|i| b.add_terminal(format!("t{i}"))).collect();
        for i in 0..4 {
            b.link(s[i], s[(i + 1) % 4]).unwrap();
            b.link(t[i], s[i]).unwrap();
        }
        let net = b.build();
        let mut r = fabric::Routes::new(&net, "clockwise");
        for (dst_t, &dst) in net.terminals().iter().enumerate() {
            let host = net.channel(net.out_channels(dst)[0]).dst; // its switch
            for i in 0..4 {
                if t[i] == dst {
                    continue;
                }
                r.set_next(t[i], dst_t, net.channel_between(t[i], s[i]).unwrap());
            }
            for i in 0..4 {
                if s[i] == host {
                    r.set_next(s[i], dst_t, net.channel_between(s[i], dst).unwrap());
                } else {
                    r.set_next(
                        s[i],
                        dst_t,
                        net.channel_between(s[i], s[(i + 1) % 4]).unwrap(),
                    );
                }
            }
        }
        let report = analyze(&net, &r);
        assert!(report.has(LintCode::CdgCycle));
        assert!(!report.clean());
        assert_eq!(report.stats.cyclic_layers, vec![0]);
        let d = report.diagnostics_for(LintCode::CdgCycle).next().unwrap();
        let Witness::CdgCycle { channels, .. } = &d.witness else {
            panic!("V004 must carry a CdgCycle witness");
        };
        assert!(!channels.is_empty());
        // Witness channels chain: consecutive dependencies share a node.
        for w in channels.windows(2) {
            assert_eq!(net.channel(w[0]).dst, net.channel(w[1]).src);
        }
    }

    #[test]
    fn dependency_edges_follow_the_tables() {
        let net = line();
        let r = bfs_routes(&net);
        let edges = dependency_edges(&net, &r);
        assert_eq!(edges.len(), 1, "single-layer artifact");
        assert!(!edges[0].is_empty());
        // Every edge chains two channels through a node.
        for &(a, b) in &edges[0] {
            assert_eq!(net.channel(ChannelId(a)).dst, net.channel(ChannelId(b)).src);
        }
        // An artifact for a different network contributes nothing.
        let mut b = NetworkBuilder::new();
        let s0 = b.add_switch("s0", 4);
        let t0 = b.add_terminal("t0");
        b.link(t0, s0).unwrap();
        let other = b.build();
        assert!(dependency_edges(&other, &r).is_empty());
    }

    #[test]
    fn union_cycles_catch_update_window_hazards() {
        let net = line();
        let r = bfs_routes(&net);
        // A clean artifact unioned with itself stays clean.
        assert!(union_cycles(&net, &[&r, &r]).is_empty());

        // A ring routed all-clockwise toward one destination is an
        // acyclic dependency arc; two such artifacts toward *opposite*
        // destinations each stay acyclic, but their union closes the
        // ring — the classic update-window hazard.
        let mut b = NetworkBuilder::new();
        let s: Vec<_> = (0..4).map(|i| b.add_switch(format!("s{i}"), 36)).collect();
        let t: Vec<_> = (0..4).map(|i| b.add_terminal(format!("t{i}"))).collect();
        for i in 0..4 {
            b.link(s[i], s[(i + 1) % 4]).unwrap();
            b.link(t[i], s[i]).unwrap();
        }
        let ring = b.build();
        let route_to = |dst: usize| {
            let mut r = fabric::Routes::new(&ring, format!("cw-to-{dst}"));
            for i in 0..4 {
                if i != dst {
                    r.set_next(t[i], dst, ring.channel_between(t[i], s[i]).unwrap());
                }
                let hop = if i == dst {
                    ring.channel_between(s[i], t[dst]).unwrap()
                } else {
                    ring.channel_between(s[i], s[(i + 1) % 4]).unwrap()
                };
                r.set_next(s[i], dst, hop);
            }
            r
        };
        let a = route_to(2);
        let b = route_to(0);
        assert!(union_cycles(&ring, &[&a]).is_empty(), "one arc is acyclic");
        assert!(union_cycles(&ring, &[&b]).is_empty(), "one arc is acyclic");
        let hazards = union_cycles(&ring, &[&a, &b]);
        assert_eq!(hazards.len(), 1, "the union closes the ring on layer 0");
        assert_eq!(hazards[0].0, 0);
        assert!(!hazards[0].1.is_empty());
    }

    #[test]
    fn renderers_mention_code_and_summary() {
        let net = line();
        let mut r = bfs_routes(&net);
        r.clear_next(net.node_by_name("s0").unwrap(), 1);
        let report = analyze(&net, &r);
        let human = report.render_human();
        assert!(human.contains("V002"));
        assert!(human.contains("summary:"));
        assert!(report.to_json().is_ok());
    }
}
