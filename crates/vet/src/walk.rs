//! Destination-based table walk.
//!
//! For each destination terminal the forwarding tables induce a next-hop
//! function over nodes. One colored walk per destination classifies every
//! node as reaching the destination, looping, or broken — O(V) work per
//! destination instead of the O(pairs · hops) of walking every
//! source/destination pair separately. Dependency-graph edges are also
//! collected here, memoized per (destination, layer) so shared path
//! suffixes are traversed once.

use fabric::{ChannelId, Network, NodeId, Routes};
use rustc_hash::FxHashSet;

use crate::diag::{Emitter, LintCode, Severity, Witness};
use crate::Config;

const UNVISITED: u8 = 0;
const ON_STACK: u8 = 1;
const OK: u8 = 2;
const BROKEN: u8 = 3;

/// Everything the per-destination walks learned, for the report.
pub(crate) struct WalkResult {
    pub pairs: usize,
    pub pairs_routed: usize,
    pub pairs_broken: usize,
    pub pairs_unreachable: usize,
    pub max_hops: u32,
    /// Routed paths per virtual layer.
    pub paths_per_layer: Vec<usize>,
    /// Per-layer dependency edges between channel ids.
    pub edges: Vec<FxHashSet<(u32, u32)>>,
    /// Sample of failed terminal pairs (see [`crate::Stats::broken_pairs`]).
    pub broken_pairs: Vec<(NodeId, NodeId)>,
}

/// Why one walk stopped.
enum Stop {
    /// Reached a node already known to route to the destination.
    Reached,
    /// Hit a loop, a broken node, or an unusable entry.
    Failed,
}

pub(crate) fn walk_tables(
    net: &Network,
    routes: &Routes,
    cfg: &Config,
    em: &mut Emitter,
) -> WalkResult {
    walk_tables_scoped(net, routes, cfg, em, None)
}

/// [`walk_tables`] restricted to a destination subset: with
/// `scope = Some(dests)` only the listed destination terminal indices
/// are walked (each still against every source), so re-verifying an
/// incrementally patched artifact costs O(scope · V) instead of
/// O(T · V). `None` walks everything.
pub(crate) fn walk_tables_scoped(
    net: &Network,
    routes: &Routes,
    cfg: &Config,
    em: &mut Emitter,
    scope: Option<&[usize]>,
) -> WalkResult {
    let n = net.num_nodes();
    let nl = routes.num_layers() as usize;
    let mut res = WalkResult {
        pairs: 0,
        pairs_routed: 0,
        pairs_broken: 0,
        pairs_unreachable: 0,
        max_hops: 0,
        paths_per_layer: vec![0; nl],
        edges: vec![FxHashSet::default(); nl],
        broken_pairs: Vec::new(),
    };

    // Reused across destinations.
    let mut state = vec![UNVISITED; n];
    let mut tdist = vec![u32::MAX; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut srcs_by_layer: Vec<Vec<NodeId>> = vec![Vec::new(); nl];
    let mut mark = vec![0u32; n];
    let mut generation = 0u32;

    let dest_list: Vec<usize> = match scope {
        None => (0..net.num_terminals()).collect(),
        Some(dests) => dests
            .iter()
            .copied()
            .filter(|&d| d < net.num_terminals())
            .collect(),
    };
    for dst_t in dest_list {
        let dst = net.terminals()[dst_t];
        state.iter_mut().for_each(|s| *s = UNVISITED);
        tdist.iter_mut().for_each(|d| *d = u32::MAX);
        srcs_by_layer.iter_mut().for_each(Vec::clear);
        state[dst.idx()] = OK;
        tdist[dst.idx()] = 0;
        let hops = net.hops_to(dst);

        // Terminal sources first (broken walks here are reachable-pair
        // errors), then leftover switches (latent findings, warnings).
        for &src in net.terminals() {
            if src == dst {
                continue;
            }
            res.pairs += 1;
            let src_t = net.terminal_index(src).expect("terminal list entry");
            match walk_one(
                net, routes, dst, dst_t, src, true, &hops, &mut state, &mut stack, em,
            ) {
                Stop::Reached => {
                    unwind(net, routes, dst_t, &stack, &mut state, &mut tdist);
                    res.pairs_routed += 1;
                    let routed = tdist[src.idx()];
                    res.max_hops = res.max_hops.max(routed);
                    let minimal = hops[src.idx()];
                    if cfg.check_minimal && minimal != u32::MAX && routed > minimal {
                        em.emit(
                            LintCode::NonMinimalPath,
                            Severity::Warning,
                            format!(
                                "route {src:?} -> {dst:?} takes {routed} hops, minimum is \
                                 {minimal} (stretch {:.2})",
                                routed as f64 / minimal as f64
                            ),
                            Witness::Stretch {
                                src,
                                dst,
                                hops: routed,
                                minimal,
                            },
                        );
                    }
                    let layer = routes.layer(src_t, dst_t);
                    if (layer as usize) < nl {
                        res.paths_per_layer[layer as usize] += 1;
                        srcs_by_layer[layer as usize].push(src);
                    } else {
                        em.emit(
                            LintCode::VlOutOfRange,
                            Severity::Error,
                            format!(
                                "path {src:?} -> {dst:?} assigned layer {layer}, but only \
                                 {nl} layer(s) exist"
                            ),
                            Witness::Layer { src, dst, layer },
                        );
                    }
                }
                Stop::Failed => {
                    fail(&stack, &mut state);
                    if hops[src.idx()] == u32::MAX {
                        res.pairs_unreachable += 1;
                    } else {
                        res.pairs_broken += 1;
                    }
                    if res.broken_pairs.len() < crate::Stats::BROKEN_PAIR_SAMPLE {
                        res.broken_pairs.push((src, dst));
                    }
                }
            }
        }
        for &sw in net.switches() {
            if state[sw.idx()] != UNVISITED {
                continue;
            }
            match walk_one(
                net, routes, dst, dst_t, sw, false, &hops, &mut state, &mut stack, em,
            ) {
                Stop::Reached => unwind(net, routes, dst_t, &stack, &mut state, &mut tdist),
                Stop::Failed => fail(&stack, &mut state),
            }
        }

        // Dependency edges: per (destination, layer), each node's entry is
        // followed at most once — chains shared by many sources are
        // traversed a single time.
        for (layer, srcs) in srcs_by_layer.iter().enumerate() {
            if srcs.is_empty() {
                continue;
            }
            generation += 1;
            for &src in srcs {
                let mut at = src;
                let mut prev: Option<ChannelId> = None;
                while at != dst {
                    let c = routes
                        .next_hop(at, dst_t)
                        .expect("entry exists on a routed path");
                    if let Some(p) = prev {
                        res.edges[layer].insert((p.0, c.0));
                    }
                    if mark[at.idx()] == generation {
                        break;
                    }
                    mark[at.idx()] = generation;
                    prev = Some(c);
                    at = net.channel(c).dst;
                }
            }
        }
    }
    res
}

/// Follow the next-hop function from `start` toward `dst` until a node of
/// known state, a loop, or an unusable entry. Pushes the newly visited
/// nodes (all left `ON_STACK`) onto `stack` for the caller to resolve.
#[allow(clippy::too_many_arguments)]
fn walk_one(
    net: &Network,
    routes: &Routes,
    dst: NodeId,
    dst_t: usize,
    start: NodeId,
    terminal_pass: bool,
    hops: &[u32],
    state: &mut [u8],
    stack: &mut Vec<NodeId>,
    em: &mut Emitter,
) -> Stop {
    // Broken walks from a terminal are errors a packet would hit; walks
    // only reachable from unrouted switches are latent — warnings.
    let broken_sev = if terminal_pass {
        Severity::Error
    } else {
        Severity::Warning
    };
    stack.clear();
    let mut at = start;
    loop {
        match state[at.idx()] {
            OK => return Stop::Reached,
            BROKEN => return Stop::Failed,
            ON_STACK => {
                // `at` closes a cycle: the stack suffix from its first
                // occurrence is the loop body.
                let pos = stack
                    .iter()
                    .position(|&v| v == at)
                    .expect("on-stack node is on the stack");
                let channels: Vec<ChannelId> = stack[pos..]
                    .iter()
                    .map(|&v| routes.next_hop(v, dst_t).expect("stacked entry is valid"))
                    .collect();
                em.emit(
                    LintCode::ForwardingLoop,
                    broken_sev,
                    format!(
                        "tables toward {dst:?} loop through {} node(s) starting at {:?}",
                        channels.len(),
                        stack[pos]
                    ),
                    Witness::TableLoop { dst, channels },
                );
                return Stop::Failed;
            }
            _ => {}
        }
        let Some(c) = routes.next_hop(at, dst_t) else {
            let (sev, why) = if hops[at.idx()] == u32::MAX {
                // No physical path either: a coverage gap, not a bug.
                (Severity::Warning, "no entry and no physical path")
            } else {
                (broken_sev, "no entry despite a physical path")
            };
            em.emit(
                LintCode::MissingEntry,
                sev,
                format!("{why} at {at:?} toward {dst:?}"),
                Witness::Entry { node: at, dst },
            );
            state[at.idx()] = BROKEN;
            return Stop::Failed;
        };
        if c.idx() >= net.num_channels() {
            em.emit(
                LintCode::InvalidNextHop,
                Severity::Error,
                format!(
                    "entry at {at:?} toward {dst:?} names channel {} but the network has \
                     only {} (stale tables?)",
                    c.0,
                    net.num_channels()
                ),
                Witness::NextHop {
                    node: at,
                    dst,
                    channel: c.0,
                },
            );
            state[at.idx()] = BROKEN;
            return Stop::Failed;
        }
        let ch = net.channel(c);
        if ch.src != at {
            em.emit(
                LintCode::InvalidNextHop,
                Severity::Error,
                format!(
                    "entry at {at:?} toward {dst:?} names channel {c:?}, which leaves \
                     {:?} instead",
                    ch.src
                ),
                Witness::NextHop {
                    node: at,
                    dst,
                    channel: c.0,
                },
            );
            state[at.idx()] = BROKEN;
            return Stop::Failed;
        }
        if ch.dst != dst && net.is_terminal(ch.dst) {
            em.emit(
                LintCode::InvalidNextHop,
                Severity::Error,
                format!(
                    "entry at {at:?} toward {dst:?} enters terminal {:?}, which cannot \
                     forward",
                    ch.dst
                ),
                Witness::NextHop {
                    node: at,
                    dst,
                    channel: c.0,
                },
            );
            state[at.idx()] = BROKEN;
            return Stop::Failed;
        }
        state[at.idx()] = ON_STACK;
        stack.push(at);
        at = ch.dst;
    }
}

/// Successful walk: every stacked node routes to the destination. The
/// stack top's entry points at the junction node whose table distance is
/// already known; distances accumulate backward from there.
fn unwind(
    net: &Network,
    routes: &Routes,
    dst_t: usize,
    stack: &[NodeId],
    state: &mut [u8],
    tdist: &mut [u32],
) {
    let Some(&top) = stack.last() else {
        return;
    };
    let junction = net
        .channel(routes.next_hop(top, dst_t).expect("stacked entry is valid"))
        .dst;
    let mut d = tdist[junction.idx()];
    debug_assert_ne!(d, u32::MAX, "junction distance must be resolved");
    for &v in stack.iter().rev() {
        d += 1;
        tdist[v.idx()] = d;
        state[v.idx()] = OK;
    }
}

/// Failed walk: nothing on the stack can reach the destination.
fn fail(stack: &[NodeId], state: &mut [u8]) {
    for &v in stack {
        state[v.idx()] = BROKEN;
    }
}
