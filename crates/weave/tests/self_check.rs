//! Self-tests for the model checker: every detector (race-exposed
//! assertion, deadlock, lost wakeup, lock-order inversion, Arc lifecycle,
//! leak, livelock) must fire on a minimal known-bad program and stay silent
//! on the corrected variant. The serve/subnet model suites lean on these
//! guarantees, so this file is the checker's own mutation test.

use weave::sync::atomic::{AtomicUsize, Ordering};
use weave::sync::{Arc, Condvar, Mutex};
use weave::{thread, Builder};

#[test]
fn atomic_counter_passes_exhaustively() {
    let report = weave::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        n.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    assert!(report.complete);
    // One interleaving choice exists (who increments first), so the tree
    // must have more than one execution.
    assert!(report.executions > 1, "explored {}", report.executions);
}

#[test]
fn finds_lost_update_in_read_modify_write() {
    // Classic torn increment: load, then store load+1. Some schedule must
    // interleave the two threads between load and store and lose a count.
    let failure = Builder::default()
        .check(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                let v = n2.load(Ordering::SeqCst);
                n2.store(v + 1, Ordering::SeqCst);
            });
            let v = n.load(Ordering::SeqCst);
            n.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        })
        .expect_err("the torn increment must be found");
    assert!(failure.message.contains("lost update"), "{failure}");
}

#[test]
fn detects_lost_wakeup_as_deadlock() {
    // The setter flips the flag but never notifies: the waiter sleeps
    // forever on some schedule (whenever it checks the flag before the
    // store) and weave must report the deadlock.
    let failure = Builder::default()
        .check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let waiter = thread::spawn(move || {
                let (flag, cv) = &*pair2;
                let mut st = flag.lock().unwrap();
                while !*st {
                    st = cv.wait(st).unwrap(); // bug: may never be woken
                }
            });
            {
                let (flag, _cv) = &*pair;
                *flag.lock().unwrap() = true;
                // bug: missing cv.notify_one()
            }
            waiter.join().unwrap();
        })
        .expect_err("missing notify must deadlock on some schedule");
    assert!(failure.message.contains("deadlock"), "{failure}");
}

#[test]
fn condvar_handshake_passes() {
    let report = weave::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (flag, cv) = &*pair2;
            let mut st = flag.lock().unwrap();
            while !*st {
                st = cv.wait(st).unwrap();
            }
        });
        {
            let (flag, cv) = &*pair;
            *flag.lock().unwrap() = true;
            cv.notify_one();
        }
        waiter.join().unwrap();
    });
    assert!(report.complete);
}

#[test]
fn detects_lock_order_inversion() {
    let failure = Builder::default()
        .check(|| {
            let locks = Arc::new((Mutex::new(0u32), Mutex::new(0u32)));
            let locks2 = Arc::clone(&locks);
            let t = thread::spawn(move || {
                let _b = locks2.1.lock().unwrap();
                let _a = locks2.0.lock().unwrap();
            });
            let _a = locks.0.lock().unwrap();
            let _b = locks.1.lock().unwrap();
            drop((_a, _b));
            t.join().unwrap();
        })
        .expect_err("AB/BA ordering must deadlock on some schedule");
    assert!(failure.message.contains("deadlock"), "{failure}");
}

#[test]
fn detects_resurrection_of_freed_arc() {
    // One raw token, two consumers: whoever runs second operates on a
    // logically freed allocation. This is exactly the race a broken
    // Swap::read opens (increment_strong_count after the writer dropped).
    let failure = Builder::default()
        .check(|| {
            let addr = Arc::into_raw(Arc::new(7u32)) as usize;
            let t = thread::spawn(move || {
                // SAFETY(model): intentionally consumes the only token; the
                // race with the main thread is the bug under test.
                unsafe { drop(Arc::from_raw(addr as *const u32)) };
            });
            // SAFETY(model): intentionally races the spawned thread.
            unsafe {
                Arc::increment_strong_count(addr as *const u32);
                drop(Arc::from_raw(addr as *const u32));
            }
            t.join().unwrap();
        })
        .expect_err("use-after-free schedule must be found");
    assert!(failure.message.contains("freed allocation"), "{failure}");
}

#[test]
fn detects_leaked_arc() {
    let failure = Builder::default()
        .check(|| {
            let a = Arc::new(3u64);
            std::mem::forget(a);
        })
        .expect_err("forgotten Arc must be reported as a leak");
    assert!(failure.message.contains("leaked"), "{failure}");
}

#[test]
fn spin_drain_loop_terminates_and_passes() {
    // The writer-drain idiom used by serve::Swap: spin (with yield) until
    // the reader count hits zero. The yield deprioritisation must keep the
    // schedule tree finite and the protocol must pass.
    let report = weave::model(|| {
        let gate = Arc::new(AtomicUsize::new(1));
        let gate2 = Arc::clone(&gate);
        let reader = thread::spawn(move || {
            gate2.fetch_sub(1, Ordering::SeqCst);
        });
        while gate.load(Ordering::SeqCst) != 0 {
            thread::yield_now();
        }
        reader.join().unwrap();
    });
    assert!(report.complete);
}

#[test]
fn reports_livelock_when_step_budget_exceeded() {
    let failure = Builder {
        max_steps: 200,
        ..Builder::default()
    }
    .check(|| {
        let n = AtomicUsize::new(0);
        // No other thread will ever flip this: pure livelock.
        while n.load(Ordering::SeqCst) == 0 {
            thread::yield_now();
        }
    })
    .expect_err("unbounded spin must trip the step budget");
    assert!(failure.message.contains("livelock"), "{failure}");
}

#[test]
fn preemption_bound_caps_exploration() {
    let unbounded = Builder::default()
        .check(three_thread_counter)
        .expect("correct counter must pass");
    let bounded = Builder {
        preemption_bound: Some(1),
        ..Builder::default()
    }
    .check(three_thread_counter)
    .expect("correct counter must pass bounded too");
    assert!(bounded.executions <= unbounded.executions);
}

fn three_thread_counter() {
    let n = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let n2 = Arc::clone(&n);
        handles.push(thread::spawn(move || {
            n2.fetch_add(1, Ordering::SeqCst);
        }));
    }
    n.fetch_add(1, Ordering::SeqCst);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(n.load(Ordering::SeqCst), 3);
}

#[test]
fn primitives_pass_through_outside_models() {
    // No model active: everything must behave like std across real threads.
    let n = Arc::new(AtomicUsize::new(0));
    let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let n2 = Arc::clone(&n);
        let pair2 = Arc::clone(&pair);
        handles.push(thread::spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
            let (m, cv) = &*pair2;
            *m.lock().unwrap() += 1;
            cv.notify_all();
        }));
    }
    let (m, cv) = &*pair;
    let mut done = m.lock().unwrap();
    while *done < 4 {
        done = cv.wait(done).unwrap();
    }
    drop(done);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(n.load(Ordering::Relaxed), 4);
}
