//! `weave`: a first-party exhaustive model checker for the small lock-free
//! cores in this workspace (`serve::Swap`, the query engine's coalescing
//! cell, the worker park/wake handshake, `subnet`'s circuit breaker).
//!
//! # Why not loom?
//!
//! The build is offline-first: external dev-dependencies cannot be assumed
//! present. `weave` reimplements the part of loom's design these models
//! actually need — exhaustive schedule enumeration over explicit yield
//! points — with a deliberately smaller contract:
//!
//! * **Sequential consistency only.** Every modeled atomic step is explored
//!   at SeqCst strength regardless of the `Ordering` argument. This is
//!   *sound* for code that itself uses SeqCst everywhere (as `serve::Swap`
//!   does) and *incomplete* for weaker orderings: weave will not find bugs
//!   that require a relaxed reordering to surface. Miri and TSan in CI
//!   cover that axis; see DESIGN.md §13.
//! * **Cooperative replay scheduling.** Model threads are real OS threads,
//!   but exactly one runs at a time. At every modeled operation the active
//!   thread consults a shared schedule and may hand the baton to another
//!   runnable thread. A depth-first search over these decision points
//!   enumerates every interleaving (optionally preemption-bounded).
//! * **Lifecycle tracking, not borrow tracking.** The modeled
//!   [`sync::Arc`] keeps a logical strong count per allocation and turns
//!   use-after-free, double-free, resurrection via
//!   `increment_strong_count`, and leaks into model failures. It does not
//!   attempt Miri-grade provenance checking.
//!
//! # Detected failure classes
//!
//! * assertion/panic in any model thread, on any schedule;
//! * deadlock: no runnable thread while some thread is unfinished —
//!   this is also how *lost wakeups* surface (a waiter sleeps forever);
//! * livelock: a single execution exceeding its step budget;
//! * `Arc` misuse: use-after-free, double-free, leak at execution end.
//!
//! # Example
//!
//! ```
//! use weave::sync::atomic::{AtomicUsize, Ordering};
//! use weave::sync::Arc;
//!
//! weave::model(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = weave::thread::spawn(move || {
//!         n2.fetch_add(1, Ordering::SeqCst);
//!     });
//!     n.fetch_add(1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(n.load(Ordering::SeqCst), 2);
//! });
//! ```
//!
//! Outside of a [`model`] closure every primitive passes straight through
//! to its `std` counterpart, so production code can be compiled against
//! `weave::sync` under a test-only cfg without behavioural change when no
//! model is running.

pub mod hint;
mod sched;
pub mod sync;
pub mod thread;

pub use sched::{Builder, Failure, Report};

/// Run `f` under the default [`Builder`] and panic with a schedule trace on
/// the first failing interleaving. Returns the exploration [`Report`] when
/// every interleaving passes.
pub fn model<F: Fn() + 'static>(f: F) -> Report {
    match Builder::default().check(f) {
        Ok(report) => report,
        Err(failure) => panic!("weave model failed:\n{failure}"),
    }
}
