//! The cooperative replay scheduler and DFS schedule explorer.
//!
//! One execution runs the model closure with every spawned thread mapped to
//! a real OS thread, but gated so exactly one thread is `active` at a time.
//! Each modeled operation is a *scheduling point*: the active thread picks
//! the next thread to run. When more than one thread could run, the choice
//! is recorded in a decision vector; the explorer re-runs the closure,
//! incrementing the last branchable decision depth-first, until the whole
//! tree is exhausted.
//!
//! Failure of any kind (panic, deadlock, livelock, `Arc` misuse) sets the
//! `aborting` flag; every gated thread then unwinds with the private
//! [`Abort`] payload so OS threads exit promptly and the explorer can
//! report the failing schedule.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc as StdArc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard};

/// Panic payload used to unwind model threads once a failure is recorded.
/// Never observed by user code: the explorer swallows it.
struct Abort;

/// Raw pointer wrapper so the registry (which lives inside a `Mutex` shared
/// across model threads) can hold type-erased keep-alive pointers.
struct SendPtr(*const ());
// SAFETY: the pointer is only dereferenced via its paired dropper function,
// exactly once, by the explorer thread during end-of-execution cleanup; the
// pointee (a std `Arc` allocation) is itself Send + Sync.
unsafe impl Send for SendPtr {}

/// What a parked thread is waiting for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Block {
    /// Waiting to acquire model mutex `mid`.
    Mutex(usize),
    /// Waiting on model condvar `cid` (released its mutex first).
    Condvar(usize),
    /// Waiting for thread `tid` to finish.
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Eligible to be scheduled.
    Runnable,
    /// Called `yield_now`/`spin_loop`: only scheduled when no non-yielded
    /// thread is runnable. This is what bounds spin-wait loops.
    Yielded,
    Blocked(Block),
    Finished,
}

/// One recorded scheduling decision: which of `options` eligible threads
/// ran. Only branching points (`options > 1`) are recorded.
struct Choice {
    index: usize,
    options: usize,
}

struct MutexState {
    owner: Option<usize>,
}

struct CondvarState {
    /// FIFO of `(thread, mutex)` waiters; `notify_one` wakes the head.
    waiters: Vec<(usize, usize)>,
}

/// Logical lifecycle of one tracked `sync::Arc` allocation.
struct Alloc {
    /// Logical strong count: handles plus raw tokens from `into_raw` /
    /// `increment_strong_count`. Reaching zero frees the allocation.
    logical: usize,
    alive: bool,
    type_name: &'static str,
    /// Keep-alive std `Arc` (leaked clone) so the underlying memory stays
    /// valid for the whole execution even if the model frees it logically;
    /// released by `dropper` during explorer cleanup.
    keeper: SendPtr,
    dropper: unsafe fn(*const ()),
}

struct State {
    threads: Vec<Status>,
    /// The one thread allowed to run right now.
    active: usize,
    aborting: bool,
    failure: Option<String>,

    /// DFS decision vector, persisted across executions.
    schedule: Vec<Choice>,
    /// Cursor into `schedule` for the current execution.
    depth: usize,
    steps: usize,
    max_steps: usize,
    preemptions: usize,
    preemption_bound: Option<usize>,
    /// Ring of recent `(thread, op)` labels for failure reports.
    trace: Vec<String>,

    mutexes: Vec<MutexState>,
    condvars: Vec<CondvarState>,
    allocs: Vec<Alloc>,

    os_handles: Vec<std::thread::JoinHandle<()>>,
    /// Spawned OS threads that have not yet exited (root not included).
    live_os: usize,
}

const TRACE_CAP: usize = 64;

impl State {
    fn new(max_steps: usize, preemption_bound: Option<usize>) -> Self {
        State {
            threads: Vec::new(),
            active: 0,
            aborting: false,
            failure: None,
            schedule: Vec::new(),
            depth: 0,
            steps: 0,
            max_steps,
            preemptions: 0,
            preemption_bound,
            trace: Vec::new(),
            mutexes: Vec::new(),
            condvars: Vec::new(),
            allocs: Vec::new(),
            os_handles: Vec::new(),
            live_os: 0,
        }
    }

    /// Reset per-execution state; the decision vector survives so the next
    /// execution replays its prefix.
    fn reset(&mut self) {
        self.threads.clear();
        self.threads.push(Status::Runnable); // root = tid 0
        self.active = 0;
        self.aborting = false;
        self.depth = 0;
        self.steps = 0;
        self.preemptions = 0;
        self.trace.clear();
        self.mutexes.clear();
        self.condvars.clear();
        self.allocs.clear();
        self.live_os = 0;
    }

    fn note(&mut self, tid: usize, label: &str) {
        if self.trace.len() == TRACE_CAP {
            self.trace.remove(0);
        }
        self.trace.push(format!("t{tid}: {label}"));
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|s| matches!(s, Status::Finished))
    }

    fn describe_threads(&self) -> String {
        self.threads
            .iter()
            .enumerate()
            .map(|(i, s)| format!("t{i}={s:?}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

pub(crate) struct Shared {
    state: StdMutex<State>,
    cv: StdCondvar,
}

thread_local! {
    /// `(scheduler, my thread id)` when this OS thread is part of a model.
    static CURRENT: RefCell<Option<(StdArc<Shared>, usize)>> = const { RefCell::new(None) };
}

fn current() -> Option<(StdArc<Shared>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// True when the calling OS thread belongs to an active model execution.
pub(crate) fn in_model() -> bool {
    // During unwinding, modeled operations pass through to avoid panicking
    // inside destructors (a double panic would abort the process).
    !std::thread::panicking() && CURRENT.with(|c| c.borrow().is_some())
}

/// Record `msg` as the model failure, wake everyone, and unwind.
fn fail(sh: &Shared, mut st: StdGuard<'_, State>, msg: String) -> ! {
    if st.failure.is_none() {
        let detail = format!(
            "{msg}\n  threads: [{}]\n  recent ops:\n    {}",
            st.describe_threads(),
            st.trace.join("\n    "),
        );
        st.failure = Some(detail);
    }
    st.aborting = true;
    sh.cv.notify_all();
    drop(st);
    std::panic::panic_any(Abort);
}

/// Compute the threads eligible to run next, ordered so the current thread
/// (when eligible) comes first — depth-first search therefore explores the
/// no-preemption continuation before any context switch.
fn eligible(st: &mut State, me: usize) -> Vec<usize> {
    let mut opts: Vec<usize> = Vec::new();
    let mut yielded: Vec<usize> = Vec::new();
    for (tid, s) in st.threads.iter().enumerate() {
        match s {
            Status::Runnable => opts.push(tid),
            Status::Yielded => yielded.push(tid),
            _ => {}
        }
    }
    // A yielded thread runs only when nothing non-yielded can: this is what
    // keeps spin-wait loops from exploding the schedule tree.
    if opts.is_empty() {
        for &t in &yielded {
            st.threads[t] = Status::Runnable;
        }
        opts = yielded;
    }
    if let Some(p) = opts.iter().position(|&t| t == me) {
        opts.remove(p);
        opts.insert(0, me);
        // CHESS-style preemption bounding: once the budget is spent, a
        // runnable current thread keeps running.
        if let Some(bound) = st.preemption_bound {
            if st.preemptions >= bound {
                return vec![me];
            }
        }
    }
    opts
}

/// Replay or extend the decision vector; only branching points are stored.
fn pick(sh: &Shared, st: &mut StdGuard<'_, State>, options: usize) -> usize {
    if options <= 1 {
        return 0;
    }
    let d = st.depth;
    st.depth += 1;
    if d < st.schedule.len() {
        if st.schedule[d].options != options {
            // The model did something schedule-dependent outside weave's
            // view (e.g. real time, an untracked side channel). Surface it
            // rather than exploring garbage.
            if st.failure.is_none() {
                st.failure = Some(format!(
                    "nondeterministic replay: depth {d} had {} options, now {options}",
                    st.schedule[d].options
                ));
            }
            st.aborting = true;
            sh.cv.notify_all();
            std::panic::panic_any(Abort);
        }
        st.schedule[d].index
    } else {
        st.schedule.push(Choice { index: 0, options });
        0
    }
}

/// Park until this thread is the active one (or the model is aborting).
fn wait_turn<'a>(sh: &'a Shared, mut st: StdGuard<'a, State>, me: usize) -> StdGuard<'a, State> {
    loop {
        if st.aborting {
            drop(st);
            std::panic::panic_any(Abort);
        }
        if st.active == me {
            return st;
        }
        st = sh.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// The heart of the scheduler: pick who runs next and hand over the baton.
/// Returns once `me` is scheduled again (immediately if `me` was picked).
fn transfer<'a>(sh: &'a Shared, mut st: StdGuard<'a, State>, me: usize) -> StdGuard<'a, State> {
    let options = eligible(&mut st, me);
    if options.is_empty() {
        let msg = format!("deadlock: no runnable thread ({})", st.describe_threads());
        fail(sh, st, msg);
    }
    let idx = pick(sh, &mut st, options.len());
    let next = options[idx];
    if next != me && matches!(st.threads[me], Status::Runnable) {
        st.preemptions += 1;
    }
    st.threads[next] = Status::Runnable;
    st.active = next;
    if next != me {
        sh.cv.notify_all();
        st = wait_turn(sh, st, me);
    }
    st
}

/// Common prologue for every modeled operation: abort check, trace, step
/// budget, then a scheduling decision *before* the operation takes effect.
fn op_prologue<'a>(sh: &'a Shared, me: usize, label: &str) -> StdGuard<'a, State> {
    let mut st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
    if st.aborting {
        drop(st);
        std::panic::panic_any(Abort);
    }
    st.note(me, label);
    st.steps += 1;
    if st.steps > st.max_steps {
        let max = st.max_steps;
        let msg = format!("livelock suspected: execution exceeded {max} steps");
        fail(sh, st, msg);
    }
    transfer(sh, st, me)
}

/// A plain scheduling point around one shared-memory operation.
pub(crate) fn sched_point(label: &str) {
    if let Some((sh, me)) = current() {
        if std::thread::panicking() {
            return;
        }
        let st = op_prologue(&sh, me, label);
        drop(st);
    }
}

// ---------------------------------------------------------------------------
// Mutex / Condvar protocol (logical ownership; real exclusion comes from the
// one-active-thread invariant).
// ---------------------------------------------------------------------------

pub(crate) fn register_mutex() -> usize {
    let (sh, _) = current().expect("register_mutex outside model");
    let mut st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
    st.mutexes.push(MutexState { owner: None });
    st.mutexes.len() // 1-based so 0 can mean "unregistered"
}

pub(crate) fn register_condvar() -> usize {
    let (sh, _) = current().expect("register_condvar outside model");
    let mut st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
    st.condvars.push(CondvarState {
        waiters: Vec::new(),
    });
    st.condvars.len()
}

pub(crate) fn mutex_lock(id: usize) {
    let Some((sh, me)) = current() else { return };
    if std::thread::panicking() {
        return;
    }
    let mid = id - 1;
    let mut st = op_prologue(&sh, me, "mutex.lock");
    loop {
        if st.mutexes[mid].owner.is_none() {
            st.mutexes[mid].owner = Some(me);
            return;
        }
        st.threads[me] = Status::Blocked(Block::Mutex(mid));
        st = transfer(&sh, st, me);
    }
}

pub(crate) fn mutex_unlock(id: usize) {
    let Some((sh, me)) = current() else { return };
    if std::thread::panicking() {
        return;
    }
    let mid = id - 1;
    let mut st = op_prologue(&sh, me, "mutex.unlock");
    debug_assert_eq!(st.mutexes[mid].owner, Some(me), "unlock by non-owner");
    st.mutexes[mid].owner = None;
    wake_mutex_waiters(&mut st, mid);
    let st = transfer(&sh, st, me);
    drop(st);
}

fn wake_mutex_waiters(st: &mut State, mid: usize) {
    for s in st.threads.iter_mut() {
        if *s == Status::Blocked(Block::Mutex(mid)) {
            *s = Status::Runnable;
        }
    }
}

/// Atomically release mutex `mid`, park on condvar `cid`, and on wake
/// re-acquire the mutex before returning. Lost wakeups therefore manifest
/// as a deadlock (the waiter never leaves `Blocked(Condvar)`).
pub(crate) fn condvar_wait(cid: usize, mutex_id: usize) {
    let Some((sh, me)) = current() else { return };
    if std::thread::panicking() {
        return;
    }
    let (cid, mid) = (cid - 1, mutex_id - 1);
    let mut st = op_prologue(&sh, me, "condvar.wait");
    debug_assert_eq!(st.mutexes[mid].owner, Some(me), "wait without the lock");
    st.mutexes[mid].owner = None;
    wake_mutex_waiters(&mut st, mid);
    st.condvars[cid].waiters.push((me, mid));
    st.threads[me] = Status::Blocked(Block::Condvar(cid));
    st = transfer(&sh, st, me);
    // Notified: re-acquire the mutex.
    loop {
        if st.mutexes[mid].owner.is_none() {
            st.mutexes[mid].owner = Some(me);
            return;
        }
        st.threads[me] = Status::Blocked(Block::Mutex(mid));
        st = transfer(&sh, st, me);
    }
}

pub(crate) fn condvar_notify(cid: usize, all: bool) {
    let Some((sh, me)) = current() else { return };
    if std::thread::panicking() {
        return;
    }
    let cid = cid - 1;
    let label = if all {
        "condvar.notify_all"
    } else {
        "condvar.notify_one"
    };
    let mut st = op_prologue(&sh, me, label);
    let woken: Vec<(usize, usize)> = if all {
        std::mem::take(&mut st.condvars[cid].waiters)
    } else if st.condvars[cid].waiters.is_empty() {
        Vec::new()
    } else {
        vec![st.condvars[cid].waiters.remove(0)]
    };
    for (tid, mid) in woken {
        // The waiter still has to re-acquire its mutex; park it there
        // directly if the mutex is held so the scheduler never wastes a
        // branch scheduling a thread that would immediately re-block.
        st.threads[tid] = if st.mutexes[mid].owner.is_some() {
            Status::Blocked(Block::Mutex(mid))
        } else {
            Status::Runnable
        };
    }
    let st = transfer(&sh, st, me);
    drop(st);
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

pub(crate) fn yield_model() {
    let Some((sh, me)) = current() else {
        std::thread::yield_now();
        return;
    };
    if std::thread::panicking() {
        return;
    }
    let mut st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
    if st.aborting {
        drop(st);
        std::panic::panic_any(Abort);
    }
    st.note(me, "yield");
    st.steps += 1;
    if st.steps > st.max_steps {
        let max = st.max_steps;
        let msg = format!("livelock suspected: execution exceeded {max} steps");
        fail(&sh, st, msg);
    }
    st.threads[me] = Status::Yielded;
    let st = transfer(&sh, st, me);
    drop(st);
}

/// Spawn a model thread. Returns `(tid, result slot)`; the closure runs on
/// a real OS thread gated by the scheduler.
pub(crate) fn spawn_model<T: Send + 'static>(
    f: Box<dyn FnOnce() -> T + Send + 'static>,
) -> (usize, StdArc<StdMutex<Option<T>>>) {
    let (sh, me) = current().expect("spawn_model outside model");
    let slot = StdArc::new(StdMutex::new(None));
    let tid = {
        let mut st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
        st.threads.push(Status::Runnable);
        st.live_os += 1;
        st.threads.len() - 1
    };
    let sh2 = StdArc::clone(&sh);
    let slot2 = StdArc::clone(&slot);
    let os = std::thread::Builder::new()
        .name(format!("weave-t{tid}"))
        .spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((StdArc::clone(&sh2), tid)));
            let result = catch_unwind(AssertUnwindSafe(|| {
                // Do not run a single instruction before being scheduled.
                let st = sh2.state.lock().unwrap_or_else(|e| e.into_inner());
                drop(wait_turn(&sh2, st, tid));
                f()
            }));
            CURRENT.with(|c| *c.borrow_mut() = None);
            let mut st = sh2.state.lock().unwrap_or_else(|e| e.into_inner());
            match result {
                Ok(v) => {
                    *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                    thread_end(&sh2, &mut st, tid, None);
                }
                Err(payload) => {
                    if payload.is::<Abort>() {
                        st.threads[tid] = Status::Finished;
                    } else {
                        thread_end(&sh2, &mut st, tid, Some(panic_message(payload)));
                    }
                }
            }
            st.live_os -= 1;
            sh2.cv.notify_all();
        })
        .expect("failed to spawn model thread");
    {
        let mut st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
        st.os_handles.push(os);
    }
    // The spawn itself is a scheduling point: the child may run first.
    sched_point("spawn");
    let _ = me;
    (tid, slot)
}

/// Mark `tid` finished, wake joiners, and schedule a successor. Called with
/// the state lock held, from the ending thread itself.
fn thread_end(sh: &Shared, st: &mut StdGuard<'_, State>, tid: usize, panic_msg: Option<String>) {
    st.threads[tid] = Status::Finished;
    for s in st.threads.iter_mut() {
        if *s == Status::Blocked(Block::Join(tid)) {
            *s = Status::Runnable;
        }
    }
    if let Some(msg) = panic_msg {
        if st.failure.is_none() {
            let detail = format!(
                "thread t{tid} panicked: {msg}\n  threads: [{}]\n  recent ops:\n    {}",
                st.describe_threads(),
                st.trace.join("\n    "),
            );
            st.failure = Some(detail);
        }
        st.aborting = true;
        sh.cv.notify_all();
        return;
    }
    if st.aborting || st.all_finished() {
        sh.cv.notify_all();
        return;
    }
    let options = eligible(st, tid);
    if options.is_empty() {
        let msg = format!("deadlock: no runnable thread ({})", st.describe_threads());
        if st.failure.is_none() {
            let detail = format!("{msg}\n  recent ops:\n    {}", st.trace.join("\n    "));
            st.failure = Some(detail);
        }
        st.aborting = true;
        sh.cv.notify_all();
        return;
    }
    let idx = pick_end(sh, st, options.len());
    st.threads[options[idx]] = Status::Runnable;
    st.active = options[idx];
    sh.cv.notify_all();
}

/// `pick` without the fail-on-divergence path (we already hold the guard in
/// a context that cannot unwind into `fail`): divergence here aborts too.
fn pick_end(sh: &Shared, st: &mut StdGuard<'_, State>, options: usize) -> usize {
    if options <= 1 {
        return 0;
    }
    let d = st.depth;
    st.depth += 1;
    if d < st.schedule.len() {
        if st.schedule[d].options != options {
            if st.failure.is_none() {
                st.failure = Some(format!(
                    "nondeterministic replay: depth {d} had {} options, now {options}",
                    st.schedule[d].options
                ));
            }
            st.aborting = true;
            sh.cv.notify_all();
            return 0;
        }
        st.schedule[d].index
    } else {
        st.schedule.push(Choice { index: 0, options });
        0
    }
}

pub(crate) fn join_model(tid: usize) {
    let Some((sh, me)) = current() else { return };
    if std::thread::panicking() {
        return;
    }
    let mut st = op_prologue(&sh, me, "join");
    while !matches!(st.threads[tid], Status::Finished) {
        st.threads[me] = Status::Blocked(Block::Join(tid));
        st = transfer(&sh, st, me);
    }
}

// ---------------------------------------------------------------------------
// Tracked Arc registry
// ---------------------------------------------------------------------------

/// Register a fresh allocation (logical count 1). The caller attaches the
/// keep-alive pointer with [`alloc_attach`] once the allocation exists.
pub(crate) fn alloc_register(type_name: &'static str) -> usize {
    let (sh, me) = current().expect("alloc_register outside model");
    let mut st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
    st.note(me, "arc.new");
    st.allocs.push(Alloc {
        logical: 1,
        alive: true,
        type_name,
        keeper: SendPtr(std::ptr::null()),
        dropper: noop_dropper,
    });
    st.allocs.len() // 1-based; 0 = untracked
}

/// Pin the backing memory of allocation `id` for the rest of the execution;
/// `dropper` releases `keeper` during explorer cleanup.
pub(crate) fn alloc_attach(id: usize, keeper: *const (), dropper: unsafe fn(*const ())) {
    let Some((sh, _)) = current() else { return };
    let mut st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
    let a = &mut st.allocs[id - 1];
    a.keeper = SendPtr(keeper);
    a.dropper = dropper;
}

// SAFETY: does nothing; placeholder dropper for allocations with no keeper.
unsafe fn noop_dropper(_: *const ()) {}

fn alloc_fail(sh: &Shared, st: StdGuard<'_, State>, id: usize, what: &str) -> ! {
    let name = st.allocs[id].type_name;
    fail(sh, st, format!("{what} of freed allocation #{id} ({name})"))
}

/// A lifecycle event on allocation `id`. `delta` adjusts the logical strong
/// count; `must_be_alive` turns operations on a freed allocation into model
/// failures (use-after-free / resurrection / double-free).
/// Record a lifecycle event on allocation `id`. Returns `true` exactly
/// when this event dropped the logical count to zero — the allocation's
/// model-visible free point, at which the caller must run the value's
/// destructor (so drops *it* performs are ordered into this execution).
pub(crate) fn alloc_event(id: usize, label: &str, delta: isize, must_be_alive: bool) -> bool {
    let Some((sh, me)) = current() else {
        return false;
    };
    if std::thread::panicking() {
        return false;
    }
    let idx = id - 1;
    let mut st = op_prologue(&sh, me, label);
    if must_be_alive && !st.allocs[idx].alive {
        alloc_fail(&sh, st, idx, label);
    }
    let mut freed = false;
    if delta > 0 {
        st.allocs[idx].logical += delta as usize;
    } else if delta < 0 {
        let d = (-delta) as usize;
        if st.allocs[idx].logical < d {
            alloc_fail(&sh, st, idx, "extra drop");
        }
        st.allocs[idx].logical -= d;
        if st.allocs[idx].logical == 0 && st.allocs[idx].alive {
            st.allocs[idx].alive = false;
            freed = true;
        }
    }
    drop(st);
    freed
}

/// Cheap aliveness check without a scheduling point (used by `Deref`).
pub(crate) fn alloc_check_alive(id: usize, label: &str) {
    let Some((sh, _)) = current() else { return };
    if std::thread::panicking() {
        return;
    }
    let idx = id - 1;
    let st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
    if !st.allocs[idx].alive {
        alloc_fail(&sh, st, idx, label);
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

/// Exploration statistics for a fully passed model.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of complete executions (distinct schedules) explored.
    pub executions: usize,
    /// True when the schedule tree was exhausted; false when the search
    /// stopped at the execution cap.
    pub complete: bool,
}

/// A failing interleaving: the message embeds thread states and the recent
/// operation trace; `schedule` is the branch-decision vector that reaches
/// the failure deterministically.
#[derive(Debug)]
pub struct Failure {
    /// Human-readable description (deadlock, panic, Arc misuse, …).
    pub message: String,
    /// 1-based index of the failing execution.
    pub execution: usize,
    /// Branch decisions (index per branching point) reproducing the failure.
    pub schedule: Vec<usize>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}\n  execution #{} with schedule {:?}",
            self.message, self.execution, self.schedule
        )
    }
}

impl std::error::Error for Failure {}

/// Configures and runs an exhaustive exploration. The defaults explore the
/// full tree (no preemption bound) with generous budgets; models with three
/// or more threads usually want `preemption_bound: Some(2)`.
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    /// Max context switches away from a runnable thread per execution
    /// (CHESS-style). `None` = unbounded (full tree).
    pub preemption_bound: Option<usize>,
    /// Per-execution step budget; exceeding it reports a livelock.
    pub max_steps: usize,
    /// Cap on explored executions; hitting it yields `Report.complete =
    /// false` rather than an error.
    pub max_executions: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: None,
            max_steps: 20_000,
            max_executions: 500_000,
        }
    }
}

impl Builder {
    /// Explore every schedule of `f`. Returns the first failure found, or a
    /// report once the tree is exhausted (or the execution cap is hit).
    pub fn check<F: Fn()>(&self, f: F) -> Result<Report, Failure> {
        assert!(current().is_none(), "nested weave models are not supported");
        let shared = StdArc::new(Shared {
            state: StdMutex::new(State::new(self.max_steps, self.preemption_bound)),
            cv: StdCondvar::new(),
        });
        let mut executions = 0usize;
        loop {
            executions += 1;
            {
                let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                st.reset();
            }
            CURRENT.with(|c| *c.borrow_mut() = Some((StdArc::clone(&shared), 0)));
            let result = catch_unwind(AssertUnwindSafe(&f));
            CURRENT.with(|c| *c.borrow_mut() = None);
            self.finish_execution(&shared, result);
            if let Some(failure) = self.cleanup_execution(&shared) {
                return Err(Failure {
                    message: failure,
                    execution: executions,
                    schedule: {
                        let st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                        st.schedule.iter().map(|c| c.index).collect()
                    },
                });
            }
            // Depth-first: bump the deepest branch with options left.
            let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                match st.schedule.last_mut() {
                    None => {
                        return Ok(Report {
                            executions,
                            complete: true,
                        })
                    }
                    Some(c) if c.index + 1 < c.options => {
                        c.index += 1;
                        break;
                    }
                    Some(_) => {
                        st.schedule.pop();
                    }
                }
            }
            if executions >= self.max_executions {
                return Ok(Report {
                    executions,
                    complete: false,
                });
            }
        }
    }

    /// Handle the root closure's return: mark root finished, keep driving
    /// remaining threads, then wait for every OS thread to exit.
    fn finish_execution(
        &self,
        shared: &StdArc<Shared>,
        result: Result<(), Box<dyn std::any::Any + Send>>,
    ) {
        let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        match result {
            Ok(()) => {
                let mut guard = st;
                thread_end(shared, &mut guard, 0, None);
                st = guard;
            }
            Err(payload) => {
                if payload.is::<Abort>() {
                    st.threads[0] = Status::Finished;
                    // failure/aborting already recorded by `fail`.
                } else {
                    let mut guard = st;
                    thread_end(shared, &mut guard, 0, Some(panic_message(payload)));
                    st = guard;
                }
            }
        }
        while st.live_os > 0 {
            st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Leak check, keeper release, handle reaping. Returns the recorded
    /// failure (if any) for this execution.
    fn cleanup_execution(&self, shared: &StdArc<Shared>) -> Option<String> {
        let (handles, allocs, failure) = {
            let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.failure.is_none() {
                let leaks: Vec<String> = st
                    .allocs
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.logical != 0)
                    .map(|(i, a)| format!("#{i} ({}) logical count {}", a.type_name, a.logical))
                    .collect();
                if !leaks.is_empty() {
                    st.failure = Some(format!(
                        "leaked Arc allocation(s): {}\n  recent ops:\n    {}",
                        leaks.join(", "),
                        st.trace.join("\n    "),
                    ));
                }
            }
            (
                std::mem::take(&mut st.os_handles),
                std::mem::take(&mut st.allocs),
                st.failure.take(),
            )
        };
        for h in handles {
            let _ = h.join();
        }
        for a in allocs {
            // SAFETY: `keeper` was produced by `Arc::into_raw` on a clone
            // held exclusively for the registry; `dropper` casts it back to
            // its concrete type and drops it exactly once, here.
            unsafe { (a.dropper)(a.keeper.0) };
        }
        failure
    }
}
