//! Modeled `std::hint` subset.

/// Spin-loop hint. Inside a model this behaves like
/// [`crate::thread::yield_now`]: the spinner is deprioritised so busy-wait
/// loops terminate under exhaustive scheduling instead of exploding the
/// tree. Outside a model it is `std::hint::spin_loop`.
pub fn spin_loop() {
    if crate::sched::in_model() {
        crate::thread::yield_now();
    } else {
        std::hint::spin_loop();
    }
}
