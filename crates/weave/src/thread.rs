//! Modeled threads: real OS threads gated by the scheduler inside a model,
//! plain `std::thread` outside one.

use crate::sched;
use std::sync::{Arc as StdArc, Mutex as StdMutex};

enum Inner<T> {
    Model {
        tid: usize,
        slot: StdArc<StdMutex<Option<T>>>,
    },
    Os(std::thread::JoinHandle<T>),
}

/// Owned permission to join on a thread, mirroring
/// `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result. Inside a model
    /// a child panic aborts the whole execution before `join` can observe
    /// it, so the model path always returns `Ok`.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Model { tid, slot } => {
                sched::join_model(tid);
                let v = slot
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("model thread finished without a result");
                Ok(v)
            }
            Inner::Os(h) => h.join(),
        }
    }
}

/// Spawn a thread. Inside a model the child participates in exhaustive
/// scheduling; outside it is a plain `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if sched::in_model() {
        let (tid, slot) = sched::spawn_model(Box::new(f));
        JoinHandle {
            inner: Inner::Model { tid, slot },
        }
    } else {
        JoinHandle {
            inner: Inner::Os(std::thread::spawn(f)),
        }
    }
}

/// Cooperatively yield. Inside a model the calling thread is deprioritised
/// until every non-yielded thread has quiesced — this is what lets weave
/// explore spin-wait loops without unbounded schedule trees.
pub fn yield_now() {
    sched::yield_model();
}
