//! Modeled drop-in replacements for the `std::sync` surface the workspace's
//! concurrent cores use: [`Arc`], [`Mutex`]/[`MutexGuard`], [`Condvar`] and
//! the [`atomic`] types. Inside a [`crate::model`] run every operation is a
//! scheduling point explored by the DFS scheduler; outside a model each
//! call passes straight through to `std`.

use crate::sched;
use std::cell::UnsafeCell;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, TryLockError, TryLockResult};

// ---------------------------------------------------------------------------
// Arc
// ---------------------------------------------------------------------------

/// Layout-pinned payload so `into_raw` can hand out a pointer to the value
/// that round-trips back to the allocation header (`ManuallyDrop` is
/// `repr(transparent)`, so `value` stays at offset zero).
#[repr(C)]
struct Inner<T> {
    value: ManuallyDrop<T>,
    /// 1-based registry id inside a model execution; 0 when untracked.
    id: usize,
    /// Whether `value` has been destroyed. Inside a model the registry's
    /// keeper clone holds the allocation open until cleanup, so the value
    /// is destroyed *early* — at the logical free point, mid-execution —
    /// and this flag stops `Inner::drop` from doing it again.
    dropped: std::sync::atomic::AtomicBool,
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        if !*self.dropped.get_mut() {
            // SAFETY: the flag proves `value` is still alive, and `&mut
            // self` proves no other handle can reach it.
            unsafe { ManuallyDrop::drop(&mut self.value) };
        }
    }
}

/// A reference-counted pointer with model-tracked lifecycle. Mirrors the
/// `std::sync::Arc` API surface used by `serve` (including the raw-pointer
/// escape hatches `into_raw` / `from_raw` / `increment_strong_count`).
pub struct Arc<T> {
    inner: ManuallyDrop<std::sync::Arc<Inner<T>>>,
}

impl<T> Arc<T> {
    /// Allocate, registering the allocation with the active model (if any).
    pub fn new(value: T) -> Self {
        let id = if sched::in_model() {
            sched::alloc_register(std::any::type_name::<T>())
        } else {
            0
        };
        let inner = std::sync::Arc::new(Inner {
            value: ManuallyDrop::new(value),
            id,
            dropped: std::sync::atomic::AtomicBool::new(false),
        });
        if id != 0 {
            let keeper = std::sync::Arc::into_raw(std::sync::Arc::clone(&inner)) as *const ();
            sched::alloc_attach(id, keeper, drop_keeper::<T>);
        }
        Arc {
            inner: ManuallyDrop::new(inner),
        }
    }

    /// Consume the handle, returning a raw pointer to the value. The
    /// logical strong count is unchanged: the pointer now owns it.
    pub fn into_raw(this: Self) -> *const T {
        let id = this.inner.id;
        if id != 0 {
            sched::alloc_event(id, "arc.into_raw", 0, true);
        }
        let mut md = ManuallyDrop::new(this);
        // SAFETY: `md` is never used again; ownership of the std Arc moves
        // into `inner` exactly once.
        let inner = unsafe { ManuallyDrop::take(&mut md.inner) };
        // `Inner<T>` is repr(C) with `value` first, so a pointer to the
        // allocation is a pointer to the value.
        std::sync::Arc::into_raw(inner) as *const T
    }

    /// Reconstruct a handle from [`Arc::into_raw`]. In a model this fails
    /// the execution if the allocation was already logically freed.
    ///
    /// # Safety
    /// `ptr` must come from `Arc::into_raw` (or have had its count raised
    /// via [`Arc::increment_strong_count`]) and be consumed at most once.
    pub unsafe fn from_raw(ptr: *const T) -> Self {
        // SAFETY: caller contract — `ptr` originated from `into_raw`, so it
        // points at the `value` field of a live `Inner<T>` allocation.
        let inner = unsafe { std::sync::Arc::from_raw(ptr as *const Inner<T>) };
        let id = inner.id;
        if id != 0 {
            sched::alloc_event(id, "arc.from_raw", 0, true);
        }
        Arc {
            inner: ManuallyDrop::new(inner),
        }
    }

    /// Raise the strong count through a raw pointer. In a model, raising
    /// the count of a freed allocation (the classic TOCTOU resurrection
    /// race) fails the execution.
    ///
    /// # Safety
    /// `ptr` must point at a value handed out by `Arc::into_raw` whose
    /// count is still at least one for the duration of this call.
    pub unsafe fn increment_strong_count(ptr: *const T) {
        let inner = ptr as *const Inner<T>;
        // SAFETY: caller contract — the allocation is live, so reading the
        // immutable `id` field is valid.
        let id = unsafe { (*inner).id };
        if id != 0 {
            sched::alloc_event(id, "arc.increment_strong_count", 1, true);
        }
        // SAFETY: forwarded caller contract.
        unsafe { std::sync::Arc::increment_strong_count(inner) };
    }

    /// Pointer identity, mirroring `std::sync::Arc::as_ptr`.
    pub fn as_ptr(this: &Self) -> *const T {
        std::sync::Arc::as_ptr(&this.inner) as *const T
    }

    /// Mutable access when this is the only handle. Inside a model the
    /// registry holds a keep-alive clone of every tracked allocation, so
    /// this returns `None` there; use it only on the pass-through path
    /// (setup code before threads exist), as `serve` does.
    pub fn get_mut(this: &mut Self) -> Option<&mut T> {
        std::sync::Arc::get_mut(&mut this.inner).map(|inner| &mut *inner.value)
    }

    /// Physical strong count (std's, including the model keeper).
    pub fn strong_count(this: &Self) -> usize {
        std::sync::Arc::strong_count(&this.inner)
    }
}

/// Registry cleanup callback: releases the keep-alive clone for `Inner<T>`.
///
/// # Safety
/// `p` must be the `Arc::into_raw` result registered alongside this dropper,
/// and must not be consumed again afterwards.
unsafe fn drop_keeper<T>(p: *const ()) {
    // SAFETY: `p` was produced by `Arc::into_raw` on the keeper clone in
    // `Arc::new` and is dropped exactly once by the explorer.
    unsafe { drop(std::sync::Arc::from_raw(p as *const Inner<T>)) };
}

impl<T> Clone for Arc<T> {
    fn clone(&self) -> Self {
        let id = self.inner.id;
        if id != 0 {
            sched::alloc_event(id, "arc.clone", 1, true);
        }
        Arc {
            inner: ManuallyDrop::new(std::sync::Arc::clone(&self.inner)),
        }
    }
}

impl<T> Drop for Arc<T> {
    fn drop(&mut self) {
        let id = self.inner.id;
        if id != 0 && sched::alloc_event(id, "arc.drop", -1, false) {
            // The logical count just hit zero: destroy the value *now*,
            // at the model-visible free point, so destructor side effects
            // (a container releasing raw `Arc`s it holds, say) land in
            // this execution rather than after the leak check. The keeper
            // clone keeps the memory itself allocated until cleanup, which
            // is what keeps dead-access *detection* memory-safe.
            let inner = std::sync::Arc::as_ptr(&self.inner) as *mut Inner<T>;
            // SAFETY: logical count zero means no live handle but ours and
            // the keeper, which never touches `value`; any later raw-ptr
            // resurrection is refuted by the registry before dereferencing.
            unsafe {
                use std::sync::atomic::Ordering::SeqCst;
                if !(*inner).dropped.swap(true, SeqCst) {
                    ManuallyDrop::drop(&mut (*inner).value);
                }
            }
        }
        // SAFETY: `inner` is dropped exactly once, here; the wrapper is
        // never used after drop.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
    }
}

impl<T> Deref for Arc<T> {
    type Target = T;
    fn deref(&self) -> &T {
        let id = self.inner.id;
        if id != 0 {
            sched::alloc_check_alive(id, "arc.deref");
        }
        &self.inner.value
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Arc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// Mutex / Condvar
// ---------------------------------------------------------------------------

/// A mutex whose exclusion is logical under a model (the scheduler runs one
/// thread at a time) and real (`std::sync::Mutex<()>`) otherwise.
pub struct Mutex<T: ?Sized> {
    /// Model registry id, assigned lazily on first model use.
    id: std::sync::atomic::AtomicUsize,
    real: std::sync::Mutex<()>,
    data: UnsafeCell<T>,
}

// SAFETY: same bounds as std::sync::Mutex — exclusion is guaranteed either
// by the scheduler's single-active-thread invariant (model) or by `real`.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
// SAFETY: see above; `&Mutex<T>` only yields `&mut T` under that exclusion.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Create an unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            id: std::sync::atomic::AtomicUsize::new(0),
            real: std::sync::Mutex::new(()),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the mutex, returning the inner value. Never `Err` (weave
    /// ignores poisoning).
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    fn model_id(&self) -> usize {
        use std::sync::atomic::Ordering::Relaxed;
        let mut id = self.id.load(Relaxed);
        if id == 0 {
            id = sched::register_mutex();
            self.id.store(id, Relaxed);
        }
        id
    }

    /// Acquire the lock. Never returns `Err`: weave ignores poisoning, so
    /// `.lock().unwrap()` call sites behave identically to std's happy
    /// path.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if sched::in_model() {
            let id = self.model_id();
            sched::mutex_lock(id);
            Ok(MutexGuard {
                lock: self,
                real: None,
                model_id: id,
            })
        } else {
            let real = self.real.lock().unwrap_or_else(|e| e.into_inner());
            Ok(MutexGuard {
                lock: self,
                real: Some(real),
                model_id: 0,
            })
        }
    }

    /// Non-blocking acquire; in a model this still takes the lock through
    /// the scheduler (which never needs to spin for a free mutex).
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        if sched::in_model() {
            self.lock().map_err(|_| TryLockError::WouldBlock)
        } else {
            match self.real.try_lock() {
                Ok(real) => Ok(MutexGuard {
                    lock: self,
                    real: Some(real),
                    model_id: 0,
                }),
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
                Err(TryLockError::Poisoned(e)) => Ok(MutexGuard {
                    lock: self,
                    real: Some(e.into_inner()),
                    model_id: 0,
                }),
            }
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`]; releasing it is a scheduling point in a model.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    real: Option<std::sync::MutexGuard<'a, ()>>,
    model_id: usize,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusion (scheduler or real mutex).
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard proves exclusion (scheduler or real mutex).
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.model_id != 0 {
            sched::mutex_unlock(self.model_id);
        }
        // `real` (if any) unlocks via its own Drop.
    }
}

/// Condition variable paired with [`Mutex`]. Model waits park the thread in
/// the scheduler; a wakeup that never arrives is reported as a deadlock.
pub struct Condvar {
    id: std::sync::atomic::AtomicUsize,
    real: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Create a condvar.
    pub const fn new() -> Self {
        Condvar {
            id: std::sync::atomic::AtomicUsize::new(0),
            real: std::sync::Condvar::new(),
        }
    }

    fn model_id(&self) -> usize {
        use std::sync::atomic::Ordering::Relaxed;
        let mut id = self.id.load(Relaxed);
        if id == 0 {
            id = sched::register_condvar();
            self.id.store(id, Relaxed);
        }
        id
    }

    /// Atomically release the guard's mutex and wait to be notified, then
    /// re-acquire before returning. Never returns `Err` (no poisoning).
    pub fn wait<'a, T: ?Sized>(
        &self,
        mut guard: MutexGuard<'a, T>,
    ) -> LockResult<MutexGuard<'a, T>> {
        if guard.model_id != 0 {
            sched::condvar_wait(self.model_id(), guard.model_id);
            Ok(guard)
        } else {
            let real = guard
                .real
                .take()
                .expect("non-model guard without real lock");
            let real = self.real.wait(real).unwrap_or_else(|e| e.into_inner());
            guard.real = Some(real);
            Ok(guard)
        }
    }

    /// Wake one waiter (FIFO in a model).
    pub fn notify_one(&self) {
        if sched::in_model() {
            sched::condvar_notify(self.model_id(), false);
        } else {
            self.real.notify_one();
        }
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        if sched::in_model() {
            sched::condvar_notify(self.model_id(), true);
        } else {
            self.real.notify_all();
        }
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Modeled atomic integers and pointers.
///
/// Every operation inside a model is a scheduling point executed at SeqCst
/// strength regardless of the requested `Ordering` (see the crate docs for
/// why this is sound for SeqCst-only code and what Miri/TSan add). Outside
/// a model the requested ordering is honoured verbatim.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::sched;

    macro_rules! modeled_atomic_int {
        ($name:ident, $std:ident, $prim:ty, $label:literal) => {
            /// Modeled atomic integer; see [the module docs](self).
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                /// Create a new atomic with `v` as its initial value.
                pub const fn new(v: $prim) -> Self {
                    Self {
                        inner: std::sync::atomic::$std::new(v),
                    }
                }

                /// Atomic load (scheduling point in a model).
                pub fn load(&self, order: Ordering) -> $prim {
                    if sched::in_model() {
                        sched::sched_point(concat!($label, ".load"));
                        self.inner.load(Ordering::SeqCst)
                    } else {
                        self.inner.load(order)
                    }
                }

                /// Atomic store (scheduling point in a model).
                pub fn store(&self, val: $prim, order: Ordering) {
                    if sched::in_model() {
                        sched::sched_point(concat!($label, ".store"));
                        self.inner.store(val, Ordering::SeqCst)
                    } else {
                        self.inner.store(val, order)
                    }
                }

                /// Atomic swap (scheduling point in a model).
                pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                    if sched::in_model() {
                        sched::sched_point(concat!($label, ".swap"));
                        self.inner.swap(val, Ordering::SeqCst)
                    } else {
                        self.inner.swap(val, order)
                    }
                }

                /// Atomic add, returning the previous value.
                pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                    if sched::in_model() {
                        sched::sched_point(concat!($label, ".fetch_add"));
                        self.inner.fetch_add(val, Ordering::SeqCst)
                    } else {
                        self.inner.fetch_add(val, order)
                    }
                }

                /// Atomic subtract, returning the previous value.
                pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                    if sched::in_model() {
                        sched::sched_point(concat!($label, ".fetch_sub"));
                        self.inner.fetch_sub(val, Ordering::SeqCst)
                    } else {
                        self.inner.fetch_sub(val, order)
                    }
                }

                /// Atomic compare-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    if sched::in_model() {
                        sched::sched_point(concat!($label, ".compare_exchange"));
                        self.inner.compare_exchange(
                            current,
                            new,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                    } else {
                        self.inner.compare_exchange(current, new, success, failure)
                    }
                }

                /// Weak compare-exchange; the model never fails spuriously.
                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    modeled_atomic_int!(AtomicUsize, AtomicUsize, usize, "usize");
    modeled_atomic_int!(AtomicU64, AtomicU64, u64, "u64");
    modeled_atomic_int!(AtomicU32, AtomicU32, u32, "u32");

    /// Modeled atomic boolean; see [the module docs](self).
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Create a new atomic with `v` as its initial value.
        pub const fn new(v: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        /// Atomic load (scheduling point in a model).
        pub fn load(&self, order: Ordering) -> bool {
            if sched::in_model() {
                sched::sched_point("bool.load");
                self.inner.load(Ordering::SeqCst)
            } else {
                self.inner.load(order)
            }
        }

        /// Atomic store (scheduling point in a model).
        pub fn store(&self, val: bool, order: Ordering) {
            if sched::in_model() {
                sched::sched_point("bool.store");
                self.inner.store(val, Ordering::SeqCst)
            } else {
                self.inner.store(val, order)
            }
        }

        /// Atomic swap (scheduling point in a model).
        pub fn swap(&self, val: bool, order: Ordering) -> bool {
            if sched::in_model() {
                sched::sched_point("bool.swap");
                self.inner.swap(val, Ordering::SeqCst)
            } else {
                self.inner.swap(val, order)
            }
        }
    }

    /// Modeled atomic pointer; see [the module docs](self).
    #[derive(Debug)]
    pub struct AtomicPtr<T> {
        inner: std::sync::atomic::AtomicPtr<T>,
    }

    impl<T> AtomicPtr<T> {
        /// Create a new atomic pointer with `p` as its initial value.
        pub const fn new(p: *mut T) -> Self {
            Self {
                inner: std::sync::atomic::AtomicPtr::new(p),
            }
        }

        /// Atomic load (scheduling point in a model).
        pub fn load(&self, order: Ordering) -> *mut T {
            if sched::in_model() {
                sched::sched_point("ptr.load");
                self.inner.load(Ordering::SeqCst)
            } else {
                self.inner.load(order)
            }
        }

        /// Atomic store (scheduling point in a model).
        pub fn store(&self, val: *mut T, order: Ordering) {
            if sched::in_model() {
                sched::sched_point("ptr.store");
                self.inner.store(val, Ordering::SeqCst)
            } else {
                self.inner.store(val, order)
            }
        }

        /// Atomic swap (scheduling point in a model).
        pub fn swap(&self, val: *mut T, order: Ordering) -> *mut T {
            if sched::in_model() {
                sched::sched_point("ptr.swap");
                self.inner.swap(val, Ordering::SeqCst)
            } else {
                self.inner.swap(val, order)
            }
        }

        /// Atomic compare-exchange.
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            if sched::in_model() {
                sched::sched_point("ptr.compare_exchange");
                self.inner
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            } else {
                self.inner.compare_exchange(current, new, success, failure)
            }
        }
    }
}
