//! Subnet discovery: the SM's sweep of the fabric.
//!
//! OpenSM learns the topology by sending directed-route probes out of
//! every discovered port. We model the same process: starting from the
//! node hosting the subnet manager, repeatedly probe each known node's
//! ports (reading the far end of each cable) until no new nodes appear.

use fabric::{ChannelId, Network, NodeId};
use rustc_hash::FxHashSet;

/// Result of a sweep.
#[derive(Clone, Debug, Default)]
pub struct DiscoveredFabric {
    /// Nodes in discovery (BFS) order; the SM's node is first.
    pub nodes: Vec<NodeId>,
    /// Cables discovered (one channel id per bidirectional pair; the
    /// lower id of the pair).
    pub cables: Vec<ChannelId>,
    /// Number of probe operations issued (each port is probed once).
    pub probes: usize,
}

impl DiscoveredFabric {
    /// Whether the sweep saw the entire fabric.
    pub fn complete(&self, net: &Network) -> bool {
        self.nodes.len() == net.num_nodes()
    }
}

/// Sweep the fabric starting at `sm_node` (usually a terminal: the host
/// running the subnet manager).
pub fn discover(net: &Network, sm_node: NodeId) -> DiscoveredFabric {
    let mut seen: FxHashSet<NodeId> = FxHashSet::default();
    let mut cables_seen: FxHashSet<ChannelId> = FxHashSet::default();
    let mut nodes = Vec::new();
    let mut cables = Vec::new();
    let mut probes = 0usize;
    let mut queue = std::collections::VecDeque::new();
    seen.insert(sm_node);
    queue.push_back(sm_node);
    while let Some(n) = queue.pop_front() {
        nodes.push(n);
        // Probe each port of n: learn the cable and the far node.
        for &c in net.out_channels(n) {
            probes += 1;
            let ch = net.channel(c);
            let canonical = match ch.rev {
                Some(r) => ChannelId(c.0.min(r.0)),
                None => c,
            };
            if cables_seen.insert(canonical) {
                cables.push(canonical);
            }
            if seen.insert(ch.dst) {
                queue.push_back(ch.dst);
            }
        }
    }
    DiscoveredFabric {
        nodes,
        cables,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::topo;

    #[test]
    fn sweep_finds_whole_connected_fabric() {
        let net = topo::kary_ntree(2, 3);
        let sm = net.terminals()[0];
        let d = discover(&net, sm);
        assert!(d.complete(&net));
        assert_eq!(d.nodes.len(), net.num_nodes());
        assert_eq!(d.cables.len(), net.num_cables());
        assert_eq!(d.nodes[0], sm);
    }

    #[test]
    fn probe_count_equals_outgoing_ports() {
        let net = topo::ring(5, 1);
        let d = discover(&net, net.terminals()[0]);
        assert_eq!(d.probes, net.num_channels());
    }

    #[test]
    fn partial_fabric_detected() {
        // Two disconnected islands: the sweep only sees the SM's island.
        let mut b = fabric::NetworkBuilder::new();
        let s0 = b.add_switch("s0", 4);
        let t0 = b.add_terminal("t0");
        b.link(t0, s0).unwrap();
        let s1 = b.add_switch("s1", 4);
        let t1 = b.add_terminal("t1");
        b.link(t1, s1).unwrap();
        let net = b.build();
        let d = discover(&net, t0);
        assert!(!d.complete(&net));
        assert_eq!(d.nodes.len(), 2);
    }

    #[test]
    fn discovery_from_any_start_is_complete() {
        let net = topo::torus(&[3, 3], 1);
        for (id, _) in net.nodes() {
            assert!(discover(&net, id).complete(&net));
        }
    }
}
