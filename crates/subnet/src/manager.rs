//! The subnet manager: sweep, route, program, validate.

use crate::discovery::{discover, DiscoveredFabric};
use crate::lft::{FabricTables, WalkError};
use crate::lid::LidMap;
use dfsssp_core::verify::deadlock_report;
use dfsssp_core::{RouteError, RoutingEngine};
use fabric::{Network, NodeId, Routes};

/// Errors of a subnet-manager run.
#[derive(Debug)]
pub enum SmError {
    /// The sweep did not reach every node.
    PartialDiscovery {
        /// Nodes found.
        found: usize,
        /// Nodes in the fabric.
        total: usize,
    },
    /// The routing engine failed.
    Routing(RouteError),
    /// The programmed tables fail the connectivity walk.
    Walk(WalkError),
    /// The routing needs more VLs than the hardware has.
    TooManyVls {
        /// VLs required by the routing.
        required: usize,
        /// VLs the hardware offers.
        available: usize,
    },
    /// The routing's dependency graph has a cyclic layer: unsafe to
    /// deploy (only possible for engines that are not deadlock-free).
    CyclicLayers(Vec<u8>),
    /// A fabric event referenced hardware the reference network does not
    /// have (or the wrong kind of node).
    InvalidEvent(String),
    /// The routing engine panicked; the payload message is attached.
    /// Produced by [`crate::armor::contain`] — the panic never crosses
    /// the serving loop.
    EnginePanicked(String),
}

impl std::fmt::Display for SmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmError::PartialDiscovery { found, total } => {
                write!(f, "sweep found {found} of {total} nodes")
            }
            SmError::Routing(e) => write!(f, "routing failed: {e}"),
            SmError::Walk(e) => write!(f, "LFT validation failed: {e}"),
            SmError::TooManyVls {
                required,
                available,
            } => write!(f, "routing needs {required} VLs, hardware has {available}"),
            SmError::CyclicLayers(ls) => write!(f, "cyclic dependency layers: {ls:?}"),
            SmError::InvalidEvent(why) => write!(f, "invalid fabric event: {why}"),
            SmError::EnginePanicked(msg) => write!(f, "routing engine panicked: {msg}"),
        }
    }
}

impl std::error::Error for SmError {}

impl From<RouteError> for SmError {
    fn from(e: RouteError) -> Self {
        SmError::Routing(e)
    }
}

/// Everything a successful SM run programmed into the fabric.
pub struct ProgrammedFabric {
    /// Sweep result.
    pub discovery: DiscoveredFabric,
    /// LID assignment.
    pub lids: LidMap,
    /// The engine's routes (for simulators).
    pub routes: Routes,
    /// Compiled hardware tables.
    pub tables: FabricTables,
    /// Ordered terminal pairs validated by the LFT walk.
    pub pairs_validated: usize,
}

/// The subnet manager, parameterized by its routing engine — mirroring
/// `opensm -R <engine>`.
pub struct SubnetManager<E> {
    /// Routing engine to deploy.
    pub engine: E,
    /// Data VLs the hardware supports (8 on the paper's clusters).
    pub hardware_vls: usize,
    /// Refuse to deploy a routing whose CDG has cycles (the guard rail
    /// the paper argues every production fabric needs). Disable to
    /// reproduce running plain SSSP/MinHop like Deimos did.
    pub require_deadlock_free: bool,
}

impl<E: RoutingEngine> SubnetManager<E> {
    /// A production-configured SM: 8 VLs, deadlock guard on.
    pub fn new(engine: E) -> Self {
        SubnetManager {
            engine,
            hardware_vls: 8,
            require_deadlock_free: true,
        }
    }

    /// Full cycle: sweep from `sm_node`, assign LIDs, run the engine,
    /// program tables, validate by walking the LFTs for every ordered
    /// terminal pair.
    pub fn run(&self, net: &Network, sm_node: NodeId) -> Result<ProgrammedFabric, SmError> {
        self.run_with(&self.engine, net, sm_node)
    }

    /// Like [`Self::run`], but deploying `engine` instead of the
    /// configured one — the hook the fault-tolerance loop uses to push a
    /// fallback engine through the same sweep/program/validate cycle.
    pub fn run_with(
        &self,
        engine: &dyn RoutingEngine,
        net: &Network,
        sm_node: NodeId,
    ) -> Result<ProgrammedFabric, SmError> {
        let discovery = discover(net, sm_node);
        if !discovery.complete(net) {
            return Err(SmError::PartialDiscovery {
                found: discovery.nodes.len(),
                total: net.num_nodes(),
            });
        }
        // Honor the engine's own parallelism request (the config is
        // total, so untunable engines just report the sequential
        // default).
        let routes = engine.route_in(net, &engine.config().compute.resolve())?;
        if routes.num_layers() as usize > self.hardware_vls {
            return Err(SmError::TooManyVls {
                required: routes.num_layers() as usize,
                available: self.hardware_vls,
            });
        }
        if self.require_deadlock_free {
            let report =
                deadlock_report(net, &routes).map_err(|_| SmError::Walk(WalkError::Loop))?;
            if !report.is_deadlock_free() {
                return Err(SmError::CyclicLayers(report.cyclic_layers));
            }
        }
        let lids = LidMap::assign(net);
        let tables = FabricTables::program(net, &routes, &lids);
        let mut pairs_validated = 0;
        for &src in net.terminals() {
            for &dst in net.terminals() {
                if src == dst {
                    continue;
                }
                tables
                    .walk(net, &lids, src, lids.lid(dst))
                    .map_err(SmError::Walk)?;
                pairs_validated += 1;
            }
        }
        Ok(ProgrammedFabric {
            discovery,
            lids,
            routes,
            tables,
            pairs_validated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::MinHop;
    use dfsssp_core::{DfSssp, Sssp};
    use fabric::topo;

    #[test]
    fn dfsssp_deploys_on_a_torus() {
        let net = topo::torus(&[3, 3], 1);
        let sm = SubnetManager::new(DfSssp::new());
        let fabric = sm.run(&net, net.terminals()[0]).unwrap();
        assert_eq!(fabric.pairs_validated, 9 * 8);
        assert!(fabric.routes.num_layers() >= 2);
    }

    #[test]
    fn plain_sssp_is_refused_on_a_ring() {
        // The guard rail: SSSP's cyclic CDG on the ring must be refused.
        let net = topo::ring(5, 1);
        let sm = SubnetManager::new(Sssp::new());
        match sm.run(&net, net.terminals()[0]) {
            Err(SmError::CyclicLayers(layers)) => assert_eq!(layers, vec![0]),
            other => panic!("expected cyclic-layer refusal, got {:?}", other.err()),
        }
    }

    #[test]
    fn guard_can_be_disabled_like_real_deployments() {
        let net = topo::ring(5, 1);
        let mut sm = SubnetManager::new(MinHop::new());
        sm.require_deadlock_free = false;
        assert!(sm.run(&net, net.terminals()[0]).is_ok());
    }

    #[test]
    fn vl_budget_enforced() {
        let net = topo::ring(5, 1);
        let mut sm = SubnetManager::new(DfSssp::new());
        sm.hardware_vls = 1;
        match sm.run(&net, net.terminals()[0]) {
            Err(SmError::Routing(RouteError::NeedMoreLayers { .. })) => {}
            Err(SmError::TooManyVls { .. }) => {}
            other => panic!("expected VL failure, got {:?}", other.err()),
        }
    }

    #[test]
    fn partial_fabric_refused() {
        let mut b = fabric::NetworkBuilder::new();
        let s0 = b.add_switch("s0", 4);
        let t0 = b.add_terminal("t0");
        b.link(t0, s0).unwrap();
        let s1 = b.add_switch("s1", 4);
        let t1 = b.add_terminal("t1");
        b.link(t1, s1).unwrap();
        let net = b.build();
        let sm = SubnetManager::new(DfSssp::new());
        match sm.run(&net, t0) {
            Err(SmError::PartialDiscovery { found: 2, total: 4 }) => {}
            other => panic!("expected partial discovery, got {:?}", other.err()),
        }
    }

    #[test]
    fn deploys_on_deimos_reconstruction() {
        let net = fabric::topo::realworld::RealSystem::Deimos.build(0.05);
        let sm = SubnetManager::new(DfSssp::new());
        let fabric = sm.run(&net, net.terminals()[0]).unwrap();
        assert!(fabric.pairs_validated > 0);
    }
}
