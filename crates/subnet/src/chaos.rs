//! A failure-campaign harness: seeded schedules of faults and
//! recoveries, replayed through the fault-tolerance loop with per-event
//! repair-cost accounting.
//!
//! A campaign is a list of [`Batch`]es — coalescing units of
//! [`FabricEvent`]s — generated deterministically from a seed by
//! [`schedule`]: random cable failures and repairs, correlated
//! switch-plus-cable bursts, a link-flap burst, and (by default) a heal
//! tail that restores every failed component so the campaign ends at the
//! reference state. [`run_campaign`] replays the schedule against any
//! topology and engine, re-vets every intermediate programmed state with
//! the static analyzer, and reports what each repair cost: reroute time,
//! SMP writes, the VL trajectory, quarantine counts, and which
//! escalation rung resolved each event.

use crate::events::{FabricEvent, SmLoop};
use crate::manager::SmError;
use dfsssp_core::RoutingEngine;
use fabric::{ChannelId, Network, NodeId};
use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;
use rustc_hash::FxHashSet;
use serde::Serialize;

/// What kind of campaign [`schedule`] generates.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Minimum number of events to schedule (before the heal tail).
    pub events: usize,
    /// RNG seed; same seed + same network = same schedule.
    pub seed: u64,
    /// Include a link-flap burst (down-up-down-up-down in one batch).
    pub flap_burst: bool,
    /// Include switch failures and correlated switch+cable bursts.
    pub switch_bursts: bool,
    /// Append a heal tail restoring every failed component.
    pub heal: bool,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            events: 10,
            seed: 7,
            flap_burst: true,
            switch_bursts: true,
            heal: true,
        }
    }
}

/// One coalescing unit of the campaign: the loop handles the whole
/// batch with a single reroute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Batch {
    /// What this batch models (for the report).
    pub label: String,
    /// The events, applied in order.
    pub events: Vec<FabricEvent>,
}

/// Generate a deterministic failure/recovery schedule for `net`.
///
/// Event ids refer to `net` as the reference network (see
/// [`FabricEvent`]). Concurrent failures are capped — at most a third
/// of the switch-switch cables and a quarter of the switches down at
/// once — so the campaign degrades the fabric without demolishing it.
pub fn schedule(net: &Network, spec: &CampaignSpec) -> Vec<Batch> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // Canonical (lower-id direction) switch-switch cables.
    let uplinks: Vec<ChannelId> = net
        .channels()
        .filter(|(id, ch)| {
            net.is_switch(ch.src) && net.is_switch(ch.dst) && ch.rev.is_none_or(|r| r.0 > id.0)
        })
        .map(|(id, _)| id)
        .collect();
    let switches: Vec<NodeId> = net.switches().to_vec();
    let cable_cap = (uplinks.len() / 3).max(1);
    let switch_cap = (switches.len() / 4).max(1);

    let mut down_c: FxHashSet<ChannelId> = FxHashSet::default();
    let mut down_s: FxHashSet<NodeId> = FxHashSet::default();
    let mut batches: Vec<Batch> = Vec::new();
    let mut total = 0usize;
    let mut flap_done = !spec.flap_burst;

    let pick = |rng: &mut StdRng, n: usize| rng.random_range(0..n);

    while total < spec.events {
        // The flap burst goes second, after at least one plain event.
        if !flap_done && !batches.is_empty() {
            let ups: Vec<ChannelId> = uplinks
                .iter()
                .copied()
                .filter(|c| !down_c.contains(c))
                .collect();
            if !ups.is_empty() {
                let c = ups[pick(&mut rng, ups.len())];
                batches.push(Batch {
                    label: "flap-burst".into(),
                    events: vec![
                        FabricEvent::CableDown(c),
                        FabricEvent::CableUp(c),
                        FabricEvent::CableDown(c),
                        FabricEvent::CableUp(c),
                        FabricEvent::CableDown(c),
                    ],
                });
                down_c.insert(c);
                total += 5;
            }
            flap_done = true;
            continue;
        }

        let kind = pick(&mut rng, 10);
        // Candidate pools under the concurrency caps.
        let cables_up: Vec<ChannelId> = uplinks
            .iter()
            .copied()
            .filter(|c| !down_c.contains(c))
            .collect();
        let mut cables_down: Vec<ChannelId> = down_c.iter().copied().collect();
        cables_down.sort_unstable_by_key(|c| c.0);
        let switches_up: Vec<NodeId> = switches
            .iter()
            .copied()
            .filter(|s| !down_s.contains(s))
            .collect();
        let mut switches_down: Vec<NodeId> = down_s.iter().copied().collect();
        switches_down.sort_unstable_by_key(|s| s.0);

        let can_cable_down = !cables_up.is_empty() && down_c.len() < cable_cap;
        let can_switch_down =
            spec.switch_bursts && !switches_up.is_empty() && down_s.len() < switch_cap;

        let batch = match kind {
            0..=3 if can_cable_down => {
                let c = cables_up[pick(&mut rng, cables_up.len())];
                down_c.insert(c);
                Batch {
                    label: "cable-down".into(),
                    events: vec![FabricEvent::CableDown(c)],
                }
            }
            4..=5 if !cables_down.is_empty() => {
                let c = cables_down[pick(&mut rng, cables_down.len())];
                down_c.remove(&c);
                Batch {
                    label: "cable-up".into(),
                    events: vec![FabricEvent::CableUp(c)],
                }
            }
            6 if can_switch_down => {
                let s = switches_up[pick(&mut rng, switches_up.len())];
                down_s.insert(s);
                Batch {
                    label: "switch-down".into(),
                    events: vec![FabricEvent::SwitchDown(s)],
                }
            }
            7 if !switches_down.is_empty() => {
                let s = switches_down[pick(&mut rng, switches_down.len())];
                down_s.remove(&s);
                Batch {
                    label: "switch-up".into(),
                    events: vec![FabricEvent::SwitchUp(s)],
                }
            }
            8..=9 if can_switch_down => {
                // Correlated burst: a switch dies and takes unrelated
                // cables with it (a powered rack, a cut cable tray).
                let s = switches_up[pick(&mut rng, switches_up.len())];
                down_s.insert(s);
                let mut events = vec![FabricEvent::SwitchDown(s)];
                for _ in 0..2 {
                    let pool: Vec<ChannelId> = uplinks
                        .iter()
                        .copied()
                        .filter(|c| !down_c.contains(c))
                        .collect();
                    if pool.is_empty() || down_c.len() >= cable_cap {
                        break;
                    }
                    let c = pool[pick(&mut rng, pool.len())];
                    down_c.insert(c);
                    events.push(FabricEvent::CableDown(c));
                }
                Batch {
                    label: "correlated-burst".into(),
                    events,
                }
            }
            _ if can_cable_down => {
                let c = cables_up[pick(&mut rng, cables_up.len())];
                down_c.insert(c);
                Batch {
                    label: "cable-down".into(),
                    events: vec![FabricEvent::CableDown(c)],
                }
            }
            _ if !cables_down.is_empty() => {
                let c = cables_down[pick(&mut rng, cables_down.len())];
                down_c.remove(&c);
                Batch {
                    label: "cable-up".into(),
                    events: vec![FabricEvent::CableUp(c)],
                }
            }
            _ => continue,
        };
        total += batch.events.len();
        batches.push(batch);
    }

    if spec.heal {
        let mut switches_down: Vec<NodeId> = down_s.iter().copied().collect();
        switches_down.sort_unstable_by_key(|s| s.0);
        for s in switches_down {
            batches.push(Batch {
                label: "heal-switch".into(),
                events: vec![FabricEvent::SwitchUp(s)],
            });
        }
        let mut cables_down: Vec<ChannelId> = down_c.iter().copied().collect();
        cables_down.sort_unstable_by_key(|c| c.0);
        for c in cables_down {
            batches.push(Batch {
                label: "heal-cable".into(),
                events: vec![FabricEvent::CableUp(c)],
            });
        }
    }
    batches
}

/// One line of the campaign report: what handling a batch cost.
#[derive(Clone, Debug, Serialize)]
pub struct EventRecord {
    /// Batch label (`bring-up` for the initial programming).
    pub label: String,
    /// Events in the batch (coalesced into one reroute).
    pub events: usize,
    /// Whether a reroute actually ran.
    pub rerouted: bool,
    /// Reroute wall-clock time in milliseconds.
    pub elapsed_ms: f64,
    /// Reroute wall-clock time in nanoseconds (0 for no-op batches) —
    /// the resolution incremental rerouting is judged at, where
    /// milliseconds round every fast repair to 0.0.
    pub reroute_ns: u64,
    /// LFT entries rewritten (SMP write cost).
    pub entries_changed: usize,
    /// Switches with at least one rewritten entry.
    pub switches_touched: usize,
    /// Virtual layers of the serving routing after the batch.
    pub vls: usize,
    /// Terminals quarantined after the batch.
    pub quarantined: usize,
    /// The escalation rung that resolved the batch.
    pub resolved_by: String,
    /// The transition plan (`direct`, `staged(k)+drain`, `no-op`).
    pub plan: String,
    /// Error-severity findings when re-vetting the programmed state.
    pub vet_errors: usize,
}

/// The full result of a campaign run.
#[derive(Clone, Debug, Serialize)]
pub struct CampaignReport {
    /// Topology label of the reference network.
    pub topology: String,
    /// Engine under test.
    pub engine: String,
    /// Schedule seed (0 when the schedule was hand-built).
    pub seed: u64,
    /// One record per batch, bring-up first.
    pub records: Vec<EventRecord>,
    /// Intermediate states that failed vetting: unvetted transition
    /// stages plus programmed states with error-severity findings.
    pub unsafe_states: usize,
    /// Terminals still quarantined when the campaign ended.
    pub final_quarantined: usize,
    /// Highest VL count any intermediate routing used.
    pub max_vls: usize,
    /// Routing epochs produced per second of reroute work: reroutes
    /// divided by total reroute wall-clock time. The campaign-level
    /// throughput figure incremental rerouting moves.
    pub epochs_per_sec: f64,
}

impl CampaignReport {
    /// The acceptance gate: every intermediate state was safe and no
    /// terminal was left behind.
    pub fn ok(&self) -> bool {
        self.unsafe_states == 0 && self.final_quarantined == 0
    }

    /// Render as an aligned human-readable table with a summary line.
    pub fn render_human(&self) -> String {
        let headers = [
            "event", "n", "reroute", "ms", "ns", "entries", "switches", "vls", "quar", "rung",
            "plan", "vet",
        ];
        let rows: Vec<Vec<String>> = self
            .records
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    r.events.to_string(),
                    if r.rerouted { "yes" } else { "-" }.to_string(),
                    format!("{:.1}", r.elapsed_ms),
                    r.reroute_ns.to_string(),
                    r.entries_changed.to_string(),
                    r.switches_touched.to_string(),
                    r.vls.to_string(),
                    r.quarantined.to_string(),
                    r.resolved_by.clone(),
                    r.plan.clone(),
                    if r.vet_errors == 0 {
                        "clean".to_string()
                    } else {
                        format!("{} error(s)", r.vet_errors)
                    },
                ]
            })
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "campaign: {} × {} (seed {})\n",
            self.topology, self.engine, self.seed
        ));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
        out.push_str(&fmt_row(&head, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out.push_str(&format!(
            "unsafe states: {}  final quarantined: {}  max vls: {}  epochs/s: {:.1}  \
             verdict: {}\n",
            self.unsafe_states,
            self.final_quarantined,
            self.max_vls,
            self.epochs_per_sec,
            if self.ok() { "OK" } else { "UNSAFE" }
        ));
        out
    }

    /// Serialize the report as JSON. Hand-rolled: the report is flat
    /// and this keeps the output identical across serde backends.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"topology\": \"{}\",\n", esc(&self.topology)));
        out.push_str(&format!("  \"engine\": \"{}\",\n", esc(&self.engine)));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"events\": {}, \"rerouted\": {}, \
                 \"elapsed_ms\": {:.3}, \"reroute_ns\": {}, \"entries_changed\": {}, \
                 \"switches_touched\": {}, \
                 \"vls\": {}, \"quarantined\": {}, \"resolved_by\": \"{}\", \
                 \"plan\": \"{}\", \"vet_errors\": {}}}{}\n",
                esc(&r.label),
                r.events,
                r.rerouted,
                r.elapsed_ms,
                r.reroute_ns,
                r.entries_changed,
                r.switches_touched,
                r.vls,
                r.quarantined,
                esc(&r.resolved_by),
                esc(&r.plan),
                r.vet_errors,
                if i + 1 < self.records.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"unsafe_states\": {},\n", self.unsafe_states));
        out.push_str(&format!(
            "  \"final_quarantined\": {},\n",
            self.final_quarantined
        ));
        out.push_str(&format!("  \"max_vls\": {},\n", self.max_vls));
        out.push_str(&format!(
            "  \"epochs_per_sec\": {:.3},\n",
            self.epochs_per_sec
        ));
        out.push_str(&format!("  \"ok\": {}\n", self.ok()));
        out.push('}');
        out
    }
}

/// Replay `batches` against `net` with `engine`, vetting every
/// intermediate programmed state.
pub fn run_campaign<E: RoutingEngine>(
    engine: E,
    net: &Network,
    batches: &[Batch],
    seed: u64,
) -> Result<CampaignReport, SmError> {
    run_campaign_recorded(engine, net, batches, seed, telemetry::noop())
}

/// [`run_campaign`] with the subnet-manager loop's telemetry attached:
/// per-event reroute latency and escalation-rung counters land in
/// `recorder`.
pub fn run_campaign_recorded<E: RoutingEngine>(
    engine: E,
    net: &Network,
    batches: &[Batch],
    seed: u64,
    recorder: telemetry::RecorderHandle,
) -> Result<CampaignReport, SmError> {
    let engine_name = engine.name().to_string();
    let sm_node = net
        .terminals()
        .first()
        .copied()
        .ok_or(SmError::PartialDiscovery {
            found: 0,
            total: net.num_nodes(),
        })?;
    let mut sm = SmLoop::bring_up(engine, net.clone(), sm_node)?;
    sm.set_recorder(recorder);
    let mut report = CampaignReport {
        topology: net.label().to_string(),
        engine: engine_name,
        seed,
        records: Vec::new(),
        unsafe_states: 0,
        final_quarantined: 0,
        max_vls: 0,
        epochs_per_sec: 0.0,
    };
    record(&mut report, &sm, "bring-up", 0);
    for batch in batches {
        sm.handle_batch(&batch.events)?;
        record(&mut report, &sm, &batch.label, batch.events.len());
    }
    report.final_quarantined = sm.quarantined().len();
    let epochs = report.records.iter().filter(|r| r.rerouted).count();
    let reroute_secs: f64 = report
        .records
        .iter()
        .map(|r| r.reroute_ns as f64 / 1e9)
        .sum();
    if reroute_secs > 0.0 {
        report.epochs_per_sec = epochs as f64 / reroute_secs;
    }
    Ok(report)
}

/// Vet the loop's current programmed state and append a record.
fn record<E: RoutingEngine>(
    report: &mut CampaignReport,
    sm: &SmLoop<E>,
    label: &str,
    events: usize,
) {
    let outcome = sm.outcome();
    let cfg = vet::Config {
        hw_vls: Some(8),
        deadlock_error: true,
        check_minimal: false,
        ..vet::Config::default()
    };
    let vetted = vet::analyze_with(sm.network(), &sm.programmed().routes, &cfg);
    let vet_errors = vetted.num_errors();
    let unvetted_stages = outcome.plan.stages.iter().filter(|s| !s.vetted).count();
    report.unsafe_states += unvetted_stages + usize::from(vet_errors > 0);
    report.max_vls = report.max_vls.max(outcome.vls);
    report.records.push(EventRecord {
        label: label.to_string(),
        events,
        rerouted: outcome.rerouted,
        elapsed_ms: outcome.elapsed.as_secs_f64() * 1e3,
        reroute_ns: outcome.elapsed.as_nanos() as u64,
        entries_changed: outcome.diff.entries_changed,
        switches_touched: outcome.diff.switches_touched,
        vls: outcome.vls,
        quarantined: outcome.quarantined.len(),
        resolved_by: outcome.resolved_by().to_string(),
        plan: outcome.plan.describe(),
        vet_errors,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsssp_core::DfSssp;
    use fabric::topo;

    #[test]
    fn schedules_are_deterministic_and_heal() {
        let net = topo::torus(&[3, 3], 1);
        let spec = CampaignSpec::default();
        let a = schedule(&net, &spec);
        let b = schedule(&net, &spec);
        assert_eq!(a, b, "same seed must give the same schedule");
        let total: usize = a.iter().map(|b| b.events.len()).sum();
        assert!(total >= spec.events);
        assert!(a.iter().any(|b| b.label == "flap-burst"));
        // The heal tail restores everything: net down-effect is zero.
        let mut down_c = FxHashSet::default();
        let mut down_s = FxHashSet::default();
        for batch in &a {
            for &e in &batch.events {
                match e {
                    FabricEvent::CableDown(c) => {
                        down_c.insert(c);
                    }
                    FabricEvent::CableUp(c) => {
                        down_c.remove(&c);
                    }
                    FabricEvent::SwitchDown(s) => {
                        down_s.insert(s);
                    }
                    FabricEvent::SwitchUp(s) => {
                        down_s.remove(&s);
                    }
                }
            }
        }
        assert!(down_c.is_empty() && down_s.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let net = topo::torus(&[3, 3], 1);
        let a = schedule(&net, &CampaignSpec::default());
        let b = schedule(
            &net,
            &CampaignSpec {
                seed: 8,
                ..CampaignSpec::default()
            },
        );
        assert_ne!(a, b, "seeds 7 and 8 should diverge");
    }

    #[test]
    fn smoke_campaign_on_a_fat_tree() {
        let net = topo::kary_ntree(4, 2);
        let spec = CampaignSpec::default();
        let batches = schedule(&net, &spec);
        let report = run_campaign(DfSssp::new(), &net, &batches, spec.seed).unwrap();
        assert!(report.ok(), "campaign unsafe:\n{}", report.render_human());
        assert_eq!(report.records.len(), batches.len() + 1);
        let flap = report
            .records
            .iter()
            .find(|r| r.label == "flap-burst")
            .expect("flap burst scheduled");
        assert_eq!(flap.events, 5, "flap burst coalesces 5 events");
        assert!(flap.rerouted);
        let human = report.render_human();
        assert!(human.contains("verdict: OK"));
        assert!(human.contains("epochs/s:"));
        let json = report.to_json();
        assert!(json.contains("\"unsafe_states\""));
        assert!(json.contains("\"reroute_ns\""));
        assert!(json.contains("\"epochs_per_sec\""));
        // Every reroute took nonzero wall clock, so the rate is finite
        // and positive.
        assert!(report.epochs_per_sec > 0.0);
        assert!(report.epochs_per_sec.is_finite());
        for r in report.records.iter().filter(|r| r.rerouted) {
            assert!(r.reroute_ns > 0, "rerouted record must carry nanos");
        }
    }
}
