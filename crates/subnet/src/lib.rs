//! An OpenSM-like subnet manager for the simulated fabric.
//!
//! The paper implements DFSSSP inside the InfiniBand Open Subnet Manager;
//! this crate rebuilds that deployment surface:
//!
//! * [`discovery`] — a subnet sweep: starting from the SM's node, walk
//!   the fabric port by port and inventory nodes and links.
//! * [`lid`] — local-identifier assignment for every discovered port.
//! * [`lft`] — linear forwarding tables (LID → output port per switch),
//!   compiled from a routing engine's [`fabric::Routes`], plus SL→VL
//!   tables and path records carrying each pair's service level.
//! * [`manager`] — the orchestration: sweep → assign LIDs → run the
//!   routing engine → program tables → validate connectivity by walking
//!   the programmed LFTs (hardware semantics: ports, not channels).
//! * [`events`] — the fault-tolerance runtime: cable/switch down *and up*
//!   events, flap coalescing, and a graceful-degradation escalation
//!   ladder (widen the VL budget, fall back to Up*/Down*, quarantine
//!   stranded terminals).
//! * [`transition`] — safe table transitions: old∪new CDG union checks
//!   and destination-batched drain-and-swap plans for hazardous windows.
//! * [`chaos`] — a failure-campaign harness: seeded schedules of faults
//!   and recoveries with per-event repair-cost accounting.
//! * [`armor`] — panic containment for the serving path: `catch_unwind`
//!   around every engine call, a circuit breaker over a crashing
//!   primary, and deterministic bounded retry backoff.

pub mod armor;
pub mod chaos;
pub mod discovery;
pub mod events;
pub mod lft;
pub mod lid;
pub mod manager;
pub mod sync;
pub mod transition;

pub use armor::{BreakerState, CircuitBreaker, RetryPolicy};
pub use chaos::{
    run_campaign, run_campaign_recorded, schedule, Batch, CampaignReport, CampaignSpec, EventRecord,
};
pub use discovery::{discover, DiscoveredFabric};
pub use events::{EventOutcome, FabricEvent, Rung, SmLoop};
pub use lft::{FabricTables, LftDiff, PathRecord, WalkError};
pub use lid::{Lid, LidMap};
pub use manager::{ProgrammedFabric, SmError, SubnetManager};
pub use transition::{plan_update, remap_routes, DiffPlanProvider, UpdatePlan, UpdateStage};
