//! Linear forwarding tables, SL→VL maps and path records.
//!
//! This is where the engine-agnostic [`fabric::Routes`] become hardware
//! state: each switch holds a table `LID → output port`, each
//! source-destination pair gets a *service level* (its virtual layer),
//! and switches map SL→VL identically (the paper's DFSSSP deployment
//! programs exactly this). Walking the programmed tables port-by-port is
//! the authoritative connectivity check.
//!
//! Everything here is reachable from parsed (possibly hostile) input,
//! so the non-test code must stay free of `unwrap`/`expect`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::lid::{Lid, LidMap};
use fabric::{ChannelId, Network, NodeId, Routes};
use serde::{Deserialize, Serialize};

/// Path record: what the SM answers to a path query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathRecord {
    /// Destination LID to put on the wire.
    pub dlid: Lid,
    /// Service level (maps to the virtual lane end-to-end).
    pub sl: u8,
}

/// Errors when walking programmed tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalkError {
    /// A switch has no entry (port 0) for the destination LID.
    NoEntry { switch: NodeId, dlid: Lid },
    /// An entry names a port with no cable attached.
    DeadPort { switch: NodeId, port: u8 },
    /// The hop budget was exceeded: a forwarding loop.
    Loop,
    /// LID not assigned.
    BadLid(Lid),
}

impl std::fmt::Display for WalkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalkError::NoEntry { switch, dlid } => {
                write!(f, "no LFT entry at {switch:?} for dlid {}", dlid.0)
            }
            WalkError::DeadPort { switch, port } => {
                write!(f, "LFT at {switch:?} names dead port {port}")
            }
            WalkError::Loop => write!(f, "forwarding loop"),
            WalkError::BadLid(l) => write!(f, "unassigned lid {}", l.0),
        }
    }
}

impl std::error::Error for WalkError {}

/// Result of comparing two programmed fabrics (see
/// [`FabricTables::diff`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LftDiff {
    /// `(switch, dlid)` entries whose output port changed.
    pub entries_changed: usize,
    /// Switches with at least one changed entry.
    pub switches_touched: usize,
    /// Switches of `self` with no same-named peer in `other`.
    pub switches_missing: usize,
}

/// All programmed hardware state of the fabric.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FabricTables {
    /// `lft[switch_index][lid]` = output port (0 = no entry).
    lfts: Vec<Vec<u8>>,
    /// `sl2vl[switch_index][sl]` = VL (identity here, length = #VLs).
    sl2vl: Vec<Vec<u8>>,
    /// `sl[src_t * T + dst_t]` = service level of the pair.
    sl: Vec<u8>,
    num_terminals: usize,
}

impl FabricTables {
    /// Compile routes into per-switch LFTs and SL tables.
    pub fn program(net: &Network, routes: &Routes, lids: &LidMap) -> FabricTables {
        let nt = net.num_terminals();
        let max_lid = lids.max_lid().0 as usize;
        let mut lfts = vec![vec![0u8; max_lid + 1]; net.num_switches()];
        for (si, &s) in net.switches().iter().enumerate() {
            for (dst_t, &dst) in net.terminals().iter().enumerate() {
                if let Some(c) = routes.next_hop(s, dst_t) {
                    let port = net.channel(c).src_port;
                    if port > u8::MAX as u16 {
                        // No real switch has >255 ports; a hostile input
                        // might. Leave the slot empty (0) rather than
                        // truncate — the validation walk reports it as a
                        // typed NoEntry instead of silently misrouting.
                        continue;
                    }
                    lfts[si][lids.lid(dst).0 as usize] = port as u8;
                }
            }
        }
        let vls = routes.num_layers();
        let sl2vl = vec![(0..vls).collect::<Vec<u8>>(); net.num_switches()];
        let mut sl = vec![0u8; nt * nt];
        for src_t in 0..nt {
            for dst_t in 0..nt {
                sl[src_t * nt + dst_t] = routes.layer(src_t, dst_t);
            }
        }
        FabricTables {
            lfts,
            sl2vl,
            sl,
            num_terminals: nt,
        }
    }

    /// The SM's answer to a path query from `src_t` to `dst_t`, or
    /// `None` when either terminal index is outside the programmed
    /// fabric (a stale query against rebuilt tables).
    pub fn path_record(
        &self,
        lids: &LidMap,
        net: &Network,
        src_t: usize,
        dst_t: usize,
    ) -> Option<PathRecord> {
        let dst = net.terminals().get(dst_t)?;
        let sl = self
            .sl
            .get(src_t.checked_mul(self.num_terminals)? + dst_t)?;
        Some(PathRecord {
            dlid: lids.lid(*dst),
            sl: *sl,
        })
    }

    /// The VL a packet with service level `sl` travels on at `switch`,
    /// or `None` when the switch or SL is outside the programmed tables.
    pub fn vl_of(&self, switch_index: usize, sl: u8) -> Option<u8> {
        self.sl2vl.get(switch_index)?.get(sl as usize).copied()
    }

    /// Number of VLs the programmed fabric requires.
    pub fn num_vls(&self) -> usize {
        self.sl2vl.first().map_or(1, Vec::len)
    }

    /// Compare two programmed fabrics, matching switches by *name* (so a
    /// rebuilt/degraded network diffs against its ancestor) and table
    /// slots by destination LID. Returns how many `(switch, dlid)`
    /// entries changed and how many switches were touched — the update
    /// cost of a transparent re-route, which OpenSM pushes as SMP writes.
    pub fn diff(&self, self_net: &Network, other: &FabricTables, other_net: &Network) -> LftDiff {
        let mut entries_changed = 0usize;
        let mut switches_touched = 0usize;
        let mut switches_missing = 0usize;
        for (si, &s) in self_net.switches().iter().enumerate() {
            let name = &self_net.node(s).name;
            let Some(os) = other_net.node_by_name(name) else {
                switches_missing += 1;
                continue;
            };
            let Some(osi) = other_net.switch_index(os) else {
                switches_missing += 1;
                continue;
            };
            let a = &self.lfts[si];
            let b = &other.lfts[osi];
            let changed = (0..a.len().max(b.len()))
                .filter(|&lid| a.get(lid).copied().unwrap_or(0) != b.get(lid).copied().unwrap_or(0))
                .count();
            if changed > 0 {
                switches_touched += 1;
                entries_changed += changed;
            }
        }
        LftDiff {
            entries_changed,
            switches_touched,
            switches_missing,
        }
    }

    /// Walk the programmed tables from terminal `src` to the destination
    /// LID, hardware-style: look up the output *port* at each switch and
    /// follow its cable. Returns the channels traversed.
    pub fn walk(
        &self,
        net: &Network,
        lids: &LidMap,
        src: NodeId,
        dlid: Lid,
    ) -> Result<Vec<ChannelId>, WalkError> {
        let dst = lids.node(dlid).ok_or(WalkError::BadLid(dlid))?;
        let mut at = src;
        let mut out = Vec::new();
        let mut budget = net.num_nodes() + 1;
        while at != dst {
            if budget == 0 {
                return Err(WalkError::Loop);
            }
            budget -= 1;
            let c = match net.switch_index(at) {
                Some(si) => {
                    // `.get` twice: tables programmed for a different
                    // fabric (stale walk) must report, not panic.
                    let port = self
                        .lfts
                        .get(si)
                        .and_then(|lft| lft.get(dlid.0 as usize))
                        .copied()
                        .unwrap_or(0);
                    if port == 0 {
                        return Err(WalkError::NoEntry { switch: at, dlid });
                    }
                    net.out_channels(at)
                        .iter()
                        .copied()
                        .find(|&c| net.channel(c).src_port == port as u16)
                        .ok_or(WalkError::DeadPort { switch: at, port })?
                }
                None => {
                    // Terminals inject through their (first) switch port;
                    // multi-homed terminals follow the routing tables via
                    // the same LFT-free rule OpenSM uses (host source
                    // routing picks the port of the path record).
                    net.out_channels(at)
                        .iter()
                        .copied()
                        .min_by_key(|&c| net.channel(c).src_port)
                        .ok_or(WalkError::DeadPort {
                            switch: at,
                            port: 0,
                        })?
                }
            };
            out.push(c);
            at = net.channel(c).dst;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsssp_core::{ComputeCtx, DfSssp, RoutingEngine};
    use fabric::topo;

    fn programmed(net: &Network) -> (Routes, LidMap, FabricTables) {
        let routes = DfSssp::new().route_in(net, &ComputeCtx::seq()).unwrap();
        let lids = LidMap::assign(net);
        let tables = FabricTables::program(net, &routes, &lids);
        (routes, lids, tables)
    }

    #[test]
    fn lft_walk_reaches_every_destination() {
        let net = topo::torus(&[3, 3], 1);
        let (_, lids, tables) = programmed(&net);
        for &src in net.terminals() {
            for &dst in net.terminals() {
                if src == dst {
                    continue;
                }
                let walk = tables.walk(&net, &lids, src, lids.lid(dst)).unwrap();
                assert_eq!(net.channel(*walk.last().unwrap()).dst, dst);
            }
        }
    }

    #[test]
    fn walk_matches_routes_paths() {
        let net = topo::kary_ntree(2, 3);
        let (routes, lids, tables) = programmed(&net);
        let src = net.terminals()[0];
        let dst = net.terminals()[7];
        let walk = tables.walk(&net, &lids, src, lids.lid(dst)).unwrap();
        let path = routes.path_channels(&net, src, dst).unwrap();
        assert_eq!(walk, path);
    }

    #[test]
    fn path_records_carry_the_layer() {
        let net = topo::ring(5, 1);
        let (routes, lids, tables) = programmed(&net);
        assert!(routes.num_layers() >= 2);
        let mut seen_nonzero = false;
        for s in 0..5 {
            for d in 0..5 {
                if s == d {
                    continue;
                }
                let pr = tables.path_record(&lids, &net, s, d).unwrap();
                assert_eq!(pr.sl, routes.layer(s, d));
                assert_eq!(pr.dlid, lids.lid(net.terminals()[d]));
                seen_nonzero |= pr.sl != 0;
            }
        }
        assert!(seen_nonzero, "the ring needs a second layer somewhere");
    }

    #[test]
    fn sl2vl_is_identity_within_vl_count() {
        let net = topo::ring(5, 1);
        let (routes, _, tables) = programmed(&net);
        assert_eq!(tables.num_vls(), routes.num_layers() as usize);
        for sl in 0..routes.num_layers() {
            assert_eq!(tables.vl_of(0, sl), Some(sl));
        }
        assert_eq!(tables.vl_of(99, 0), None);
        assert_eq!(tables.vl_of(0, 255), None);
    }

    #[test]
    fn stale_queries_report_instead_of_panicking() {
        let net = topo::ring(5, 1);
        let (_, lids, tables) = programmed(&net);
        // Terminal indices beyond the programmed fabric.
        assert!(tables.path_record(&lids, &net, 0, 99).is_none());
        assert!(tables.path_record(&lids, &net, 99, 0).is_none());
        // Tables programmed for a smaller fabric walked against a bigger
        // one: switch index 4 has no LFT row, which must surface as a
        // typed walk error, not an index panic.
        let (_, _, small_tables) = programmed(&topo::ring(3, 1));
        let big = topo::ring(5, 1);
        let big_lids = LidMap::assign(&big);
        let src = big.terminals()[4];
        let dst = big_lids.lid(big.terminals()[0]);
        let err = small_tables.walk(&big, &big_lids, src, dst).unwrap_err();
        assert!(matches!(
            err,
            WalkError::NoEntry { .. } | WalkError::BadLid(_)
        ));
    }

    #[test]
    fn diff_of_identical_fabrics_is_empty() {
        let net = topo::torus(&[3, 3], 1);
        let (_, lids, tables) = programmed(&net);
        let _ = lids;
        let d = tables.diff(&net, &tables, &net);
        assert_eq!(d, super::LftDiff::default());
    }

    #[test]
    fn diff_after_cable_failure_is_local() {
        let net = topo::kary_ntree(4, 2);
        let (_, _, before) = programmed(&net);
        let (degraded, removed) = fabric::degrade::fail_random_cables(&net, 2, 9);
        assert!(removed > 0);
        let (_, _, after) = programmed(&degraded);
        let d = after.diff(&degraded, &before, &net);
        assert_eq!(d.switches_missing, 0);
        assert!(d.entries_changed > 0, "a failure must change some routes");
        // Transparency: far fewer entries change than exist in total.
        let total_entries = degraded.num_terminals() * degraded.num_switches();
        assert!(
            d.entries_changed < total_entries,
            "{} of {} entries changed",
            d.entries_changed,
            total_entries
        );
    }

    #[test]
    fn missing_entry_is_reported() {
        let net = topo::ring(4, 1);
        let lids = LidMap::assign(&net);
        let empty = Routes::new(&net, "none");
        let tables = FabricTables::program(&net, &empty, &lids);
        let src = net.terminals()[0];
        let dst = net.terminals()[1];
        let err = tables.walk(&net, &lids, src, lids.lid(dst)).unwrap_err();
        assert!(matches!(err, WalkError::NoEntry { .. }));
    }

    #[test]
    fn bad_lid_is_reported() {
        let net = topo::ring(4, 1);
        let (_, lids, tables) = programmed(&net);
        let err = tables
            .walk(&net, &lids, net.terminals()[0], Lid(999))
            .unwrap_err();
        assert_eq!(err, WalkError::BadLid(Lid(999)));
    }
}
