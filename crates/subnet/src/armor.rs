//! Panic containment for the serving path.
//!
//! A routing engine is third-party code from the subnet manager's point
//! of view (OpenSM loads them as plugins): a bug in one must not take
//! the SM — and with it the whole fabric — down. This module supplies
//! the two armor pieces [`crate::SmLoop`] wraps around every engine
//! call:
//!
//! * [`contain`] — runs the call under `catch_unwind` and converts a
//!   panic into the typed [`SmError::EnginePanicked`], so the
//!   escalation ladder can treat "the engine crashed" exactly like "the
//!   engine returned an error".
//! * [`CircuitBreaker`] — the classic closed → open → half-open state
//!   machine over *consecutive* failures. While open, the loop skips
//!   the primary engine entirely and serves from the fallback; after a
//!   cooldown (counted in reroute attempts, not wall time — the loop
//!   only runs when events arrive) a single probe is let through.
//! * [`RetryPolicy`] — bounded retries with deterministic, seeded,
//!   jittered exponential backoff. Determinism matters here: a chaos
//!   campaign replayed with the same seed must observe the same backoff
//!   sequence.

use crate::manager::SmError;
use crate::sync::atomic::{AtomicU64, Ordering};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Run `f` with panics contained: a panic becomes
/// [`SmError::EnginePanicked`] carrying the panic message.
pub fn contain<T>(f: impl FnOnce() -> Result<T, SmError>) -> Result<T, SmError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(SmError::EnginePanicked(panic_message(payload))),
    }
}

/// Best-effort extraction of the panic message.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Where the breaker currently stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow to the primary engine.
    Closed,
    /// Tripped: the primary engine is skipped until the cooldown runs out.
    Open,
    /// Cooldown expired: exactly one probe call is allowed through.
    HalfOpen,
}

/// A circuit breaker over consecutive primary-engine failures.
///
/// `threshold` consecutive failures trip it open; while open,
/// [`CircuitBreaker::allow`] refuses `cooldown` calls, then moves to
/// half-open and admits one probe. A successful probe closes the
/// breaker; a failed one re-opens it for a full cooldown.
///
/// The mutable state — `(state, consecutive, remaining)` — lives in one
/// packed atomic word updated by compare-exchange loops, so every method
/// takes `&self` and each transition is a single linearization point:
/// concurrent `allow`/`record_failure` calls can never lose a failure
/// count or admit two half-open probes (model-checked under
/// `--features loom-tests`). `consecutive` and `remaining` each get 31
/// bits; counts saturate there, which only matters for configurations
/// beyond 2^31 (a saturated `remaining` still refuses, a saturated
/// `consecutive` still stays below any larger threshold).
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: usize,
    cooldown: usize,
    /// Packed `[state:2][consecutive:31][remaining:31]`.
    word: AtomicU64,
}

/// Field widths/offsets of the packed breaker word.
const BR_FIELD_BITS: u32 = 31;
const BR_FIELD_MASK: u64 = (1 << BR_FIELD_BITS) - 1;

fn br_pack(state: BreakerState, consecutive: u64, remaining: u64) -> u64 {
    let s = match state {
        BreakerState::Closed => 0u64,
        BreakerState::Open => 1,
        BreakerState::HalfOpen => 2,
    };
    (s << (2 * BR_FIELD_BITS))
        | (consecutive.min(BR_FIELD_MASK) << BR_FIELD_BITS)
        | remaining.min(BR_FIELD_MASK)
}

fn br_unpack(word: u64) -> (BreakerState, u64, u64) {
    let state = match word >> (2 * BR_FIELD_BITS) {
        0 => BreakerState::Closed,
        1 => BreakerState::Open,
        _ => BreakerState::HalfOpen,
    };
    (
        state,
        (word >> BR_FIELD_BITS) & BR_FIELD_MASK,
        word & BR_FIELD_MASK,
    )
}

impl Default for CircuitBreaker {
    /// Three consecutive failures open the breaker for two reroutes.
    fn default() -> Self {
        CircuitBreaker::new(3, 2)
    }
}

impl Clone for CircuitBreaker {
    fn clone(&self) -> Self {
        CircuitBreaker {
            threshold: self.threshold,
            cooldown: self.cooldown,
            word: AtomicU64::new(self.word.load(Ordering::SeqCst)),
        }
    }
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures
    /// and cooling down for `cooldown` refused calls. Both are clamped
    /// to at least 1.
    pub fn new(threshold: usize, cooldown: usize) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown: cooldown.max(1),
            word: AtomicU64::new(br_pack(BreakerState::Closed, 0, 0)),
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        br_unpack(self.word.load(Ordering::SeqCst)).0
    }

    /// Consecutive failures recorded since the last success.
    pub fn consecutive_failures(&self) -> usize {
        br_unpack(self.word.load(Ordering::SeqCst)).1 as usize
    }

    /// May the next call go to the primary engine? Ticks the cooldown
    /// while open; the call that exhausts it is admitted as the
    /// half-open probe (exactly one caller wins that race).
    pub fn allow(&self) -> bool {
        let mut cur = self.word.load(Ordering::SeqCst);
        loop {
            let (state, consecutive, remaining) = br_unpack(cur);
            match state {
                BreakerState::Closed | BreakerState::HalfOpen => return true,
                BreakerState::Open => {
                    let left = remaining.saturating_sub(1);
                    let (next_state, verdict) = if left == 0 {
                        (BreakerState::HalfOpen, true)
                    } else {
                        (BreakerState::Open, false)
                    };
                    let next = br_pack(next_state, consecutive, left);
                    match self
                        .word
                        .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
                    {
                        Ok(_) => return verdict,
                        Err(seen) => cur = seen,
                    }
                }
            }
        }
    }

    /// Record a successful primary call: closes the breaker.
    pub fn record_success(&self) {
        self.word
            .store(br_pack(BreakerState::Closed, 0, 0), Ordering::SeqCst);
    }

    /// Record a failed primary call. Returns `true` when this failure
    /// tripped the breaker open (from closed or from a failed probe);
    /// under concurrency exactly one of the racing failures trips.
    pub fn record_failure(&self) -> bool {
        let mut cur = self.word.load(Ordering::SeqCst);
        loop {
            let (state, consecutive, _remaining) = br_unpack(cur);
            let (next, tripped) = match state {
                BreakerState::Open => return false,
                BreakerState::HalfOpen => (self.tripped_word(), true),
                BreakerState::Closed => {
                    let seen = consecutive.saturating_add(1);
                    if seen as usize >= self.threshold {
                        (self.tripped_word(), true)
                    } else {
                        (br_pack(BreakerState::Closed, seen, 0), false)
                    }
                }
            };
            match self
                .word
                .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return tripped,
                Err(seen) => cur = seen,
            }
        }
    }

    fn tripped_word(&self) -> u64 {
        br_pack(BreakerState::Open, 0, self.cooldown as u64)
    }
}

/// Bounded retries with deterministic jittered exponential backoff.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 disables retrying).
    pub max_retries: usize,
    /// Backoff before the first retry; doubles per further retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Jitter seed: the same seed yields the same backoff sequence.
    pub seed: u64,
    /// Actually sleep the backoff. Off by default: simulations and
    /// tests want the *sequence*, not the wall-clock wait.
    pub sleep: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            seed: 0,
            sleep: false,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (1-based): exponential with full
    /// determinism, jittered into `[exp/2, exp]` so simultaneous
    /// breakers do not thunder in lockstep.
    pub fn backoff(&self, attempt: usize) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(20) as u32)
            .min(self.max_backoff);
        let half = exp / 2;
        // Jitter fraction in [0, 1) from a splitmix64 step.
        let frac = (splitmix64(self.seed ^ attempt as u64) >> 11) as f64 / (1u64 << 53) as f64;
        half + Duration::from_nanos((half.as_nanos() as f64 * frac) as u64)
    }

    /// Wait out the backoff for retry `attempt` and return it.
    pub fn pause(&self, attempt: usize) -> Duration {
        let d = self.backoff(attempt);
        if self.sleep {
            std::thread::sleep(d);
        }
        d
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contain_passes_results_through() {
        assert!(contain(|| Ok::<_, SmError>(7)).is_ok());
        let err = contain(|| -> Result<(), SmError> { Err(SmError::InvalidEvent("x".into())) })
            .unwrap_err();
        assert!(matches!(err, SmError::InvalidEvent(_)));
    }

    #[test]
    fn contain_converts_panics() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = contain(|| -> Result<(), SmError> { panic!("engine bug {}", 42) }).unwrap_err();
        std::panic::set_hook(hook);
        match err {
            SmError::EnginePanicked(msg) => assert_eq!(msg, "engine bug 42"),
            other => panic!("expected EnginePanicked, got {other}"),
        }
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let b = CircuitBreaker::new(2, 2);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.record_failure());
        assert!(b.record_failure(), "second failure trips the threshold");
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown: first call refused, second admitted as the probe.
        assert!(!b.allow());
        assert!(b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens() {
        let b = CircuitBreaker::new(1, 1);
        assert!(b.record_failure());
        assert!(b.allow(), "cooldown of 1: next call is the probe");
        assert!(b.record_failure(), "failed probe re-trips");
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = CircuitBreaker::new(3, 1);
        b.record_failure();
        b.record_failure();
        b.record_success();
        assert!(!b.record_failure(), "streak restarted");
        assert_eq!(b.consecutive_failures(), 1);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let p = RetryPolicy {
            seed: 7,
            ..RetryPolicy::default()
        };
        let a: Vec<Duration> = (1..=4).map(|i| p.backoff(i)).collect();
        let b: Vec<Duration> = (1..=4).map(|i| p.backoff(i)).collect();
        assert_eq!(a, b, "same seed, same sequence");
        for (i, d) in a.iter().enumerate() {
            let exp = p
                .base_backoff
                .saturating_mul(1 << i as u32)
                .min(p.max_backoff);
            assert!(*d >= exp / 2 && *d <= exp, "attempt {}: {d:?}", i + 1);
        }
        let other = RetryPolicy {
            seed: 8,
            ..RetryPolicy::default()
        };
        assert_ne!(a, (1..=4).map(|i| other.backoff(i)).collect::<Vec<_>>());
    }

    #[test]
    fn backoff_caps_at_the_ceiling() {
        let p = RetryPolicy::default();
        assert!(p.backoff(60) <= p.max_backoff);
    }
}

/// Exhaustive interleaving models for the breaker's packed-word CAS
/// protocol, plus a torn-RMW mutant the checker must refute. Compiled
/// only under `--features loom-tests`; see `serve::models` and
/// DESIGN.md §13 for the scheme.
#[cfg(all(test, feature = "loom-tests"))]
mod breaker_models {
    use super::*;
    use weave::sync::Arc;
    use weave::{thread, Builder};

    #[test]
    fn racing_failures_trip_exactly_once() {
        Builder::default()
            .check(|| {
                let b = Arc::new(CircuitBreaker::new(2, 1));
                let b2 = Arc::clone(&b);
                let racer = thread::spawn(move || b2.record_failure());
                let here = b.record_failure();
                let there = racer.join().unwrap();
                // Threshold 2, two racing failures: the CAS serializes
                // them, so exactly the second one trips.
                assert!(here ^ there, "expected exactly one trip: {here}/{there}");
                assert_eq!(b.state(), BreakerState::Open);
            })
            .expect("racing record_failure must trip exactly once");
    }

    #[test]
    fn racing_allows_admit_exactly_one_probe() {
        Builder::default()
            .check(|| {
                let b = Arc::new(CircuitBreaker::new(1, 2));
                assert!(b.record_failure(), "threshold 1 trips immediately");
                let b2 = Arc::clone(&b);
                let racer = thread::spawn(move || b2.allow());
                let here = b.allow();
                let there = racer.join().unwrap();
                // Cooldown 2, two racing allows: one burns the budget and
                // is refused, the other is admitted as the half-open probe.
                assert!(here ^ there, "expected exactly one probe: {here}/{there}");
                assert_eq!(b.state(), BreakerState::HalfOpen);
            })
            .expect("racing allow must admit exactly one half-open probe");
    }

    #[test]
    fn success_during_failure_race_never_wedges_open_state() {
        Builder::default()
            .check(|| {
                let b = Arc::new(CircuitBreaker::new(2, 1));
                let b2 = Arc::clone(&b);
                let failer = thread::spawn(move || {
                    b2.record_failure();
                });
                b.record_success();
                failer.join().unwrap();
                // Whoever lost the race, the word must be a coherent
                // state: either the streak restarted after the success or
                // the failure landed after it (streak of one). Never open.
                assert_ne!(b.state(), BreakerState::Open);
                assert!(b.consecutive_failures() <= 1);
            })
            .expect("success racing one failure below threshold");
    }

    /// The seeded bug: `record_failure` as a torn load/modify/store
    /// instead of a CAS loop — the exact defect the packed-word design
    /// exists to rule out.
    struct TornBreaker {
        threshold: usize,
        word: crate::sync::atomic::AtomicU64,
    }

    impl TornBreaker {
        fn record_failure(&self) -> bool {
            use crate::sync::atomic::Ordering;
            let cur = self.word.load(Ordering::SeqCst);
            let (state, consecutive, _) = br_unpack(cur);
            let (next, tripped) = match state {
                BreakerState::Open => return false,
                BreakerState::HalfOpen => (br_pack(BreakerState::Open, 0, 1), true),
                BreakerState::Closed => {
                    let seen = consecutive.saturating_add(1);
                    if seen >= self.threshold as u64 {
                        (br_pack(BreakerState::Open, 0, 1), true)
                    } else {
                        (br_pack(BreakerState::Closed, seen, 0), false)
                    }
                }
            };
            self.word.store(next, Ordering::SeqCst);
            tripped
        }
    }

    #[test]
    fn mutant_torn_rmw_loses_a_failure() {
        let failure = Builder::default()
            .check(|| {
                let b = Arc::new(TornBreaker {
                    threshold: 2,
                    word: crate::sync::atomic::AtomicU64::new(0),
                });
                let b2 = Arc::clone(&b);
                let racer = thread::spawn(move || b2.record_failure());
                let here = b.record_failure();
                let there = racer.join().unwrap();
                assert!(here ^ there, "expected exactly one trip: {here}/{there}");
            })
            .expect_err("a torn RMW must lose one of the racing failures");
        assert!(failure.message.contains("exactly one trip"), "{failure}");
    }
}
