//! The subnet manager's steady-state loop: react to fabric events.
//!
//! OpenSM alternates heavy sweeps (full rediscovery) with light sweeps
//! (port-state polls); on a topology change it re-runs routing and pushes
//! only the changed LFT entries. This module models that loop over the
//! simulated fabric: feed it [`FabricEvent`]s, get back the re-programmed
//! state plus the SMP write cost — the operational story behind the
//! paper's "can be deployed ... transparently" claim.

use crate::lft::LftDiff;
use crate::manager::{ProgrammedFabric, SmError, SubnetManager};
use dfsssp_core::RoutingEngine;
use fabric::{ChannelId, Network, NodeId};
use rustc_hash::FxHashSet;

/// A fabric event the SM reacts to.
#[derive(Clone, Debug)]
pub enum FabricEvent {
    /// A cable went down (both directions of the pair).
    CableDown(ChannelId),
    /// A switch died (all attached cables with it).
    SwitchDown(NodeId),
}

/// A running subnet manager with its current view of the fabric.
pub struct SmLoop<E> {
    sm: SubnetManager<E>,
    net: Network,
    current: ProgrammedFabric,
}

impl<E: RoutingEngine> SmLoop<E> {
    /// Bring up the fabric: initial heavy sweep + routing + programming.
    pub fn bring_up(engine: E, net: Network, sm_node: NodeId) -> Result<Self, SmError> {
        let sm = SubnetManager::new(engine);
        let current = sm.run(&net, sm_node)?;
        Ok(SmLoop { sm, net, current })
    }

    /// The current fabric view.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The current programmed state.
    pub fn programmed(&self) -> &ProgrammedFabric {
        &self.current
    }

    /// A light sweep: verify the current programming still connects every
    /// pair (cheap check against the unchanged fabric view). Returns the
    /// pair count.
    pub fn light_sweep(&self) -> Result<usize, SmError> {
        let mut pairs = 0;
        for &src in self.net.terminals() {
            for &dst in self.net.terminals() {
                if src == dst {
                    continue;
                }
                self.current
                    .tables
                    .walk(
                        &self.net,
                        &self.current.lids,
                        src,
                        self.current.lids.lid(dst),
                    )
                    .map_err(SmError::Walk)?;
                pairs += 1;
            }
        }
        Ok(pairs)
    }

    /// React to a fabric event: rebuild the fabric view (heavy sweep),
    /// re-run the engine, re-program, and return the SMP write cost
    /// relative to the previous programming.
    ///
    /// Events that disconnect the fabric surface as errors (a real SM
    /// escalates those to the operator); the loop's state is unchanged in
    /// that case, so a follow-up repair event can be handled.
    pub fn handle(&mut self, event: FabricEvent) -> Result<LftDiff, SmError> {
        let (dead_nodes, dead_channels): (FxHashSet<NodeId>, FxHashSet<ChannelId>) = match event {
            FabricEvent::CableDown(c) => {
                let mut chans = FxHashSet::default();
                chans.insert(c);
                if let Some(r) = self.net.channel(c).rev {
                    chans.insert(r);
                }
                (FxHashSet::default(), chans)
            }
            FabricEvent::SwitchDown(s) => {
                let mut nodes = FxHashSet::default();
                nodes.insert(s);
                (nodes, FxHashSet::default())
            }
        };
        let new_net = fabric::degrade::remove(&self.net, &dead_nodes, &dead_channels);
        let sm_node = new_net
            .terminals()
            .first()
            .copied()
            .ok_or(SmError::PartialDiscovery {
                found: 0,
                total: new_net.num_nodes(),
            })?;
        let fabric = self.sm.run(&new_net, sm_node)?;
        let diff = fabric
            .tables
            .diff(&new_net, &self.current.tables, &self.net);
        self.net = new_net;
        self.current = fabric;
        Ok(diff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsssp_core::DfSssp;
    use fabric::topo;

    /// A redundant fabric where any single uplink can fail.
    fn fat_tree() -> Network {
        topo::kary_ntree(4, 2)
    }

    /// Some switch-switch cable of the fabric.
    fn an_uplink(net: &Network) -> ChannelId {
        net.channels()
            .find(|(_, ch)| net.is_switch(ch.src) && net.is_switch(ch.dst))
            .map(|(id, _)| id)
            .unwrap()
    }

    #[test]
    fn bring_up_and_light_sweep() {
        let net = fat_tree();
        let sm_node = net.terminals()[0];
        let sm = SmLoop::bring_up(DfSssp::new(), net.clone(), sm_node).unwrap();
        let nt = net.num_terminals();
        assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
    }

    #[test]
    fn cable_failure_reroutes_with_small_diff() {
        let net = fat_tree();
        let sm_node = net.terminals()[0];
        let mut sm = SmLoop::bring_up(DfSssp::new(), net.clone(), sm_node).unwrap();
        let victim = an_uplink(sm.network());
        let diff = sm.handle(FabricEvent::CableDown(victim)).unwrap();
        assert!(diff.entries_changed > 0);
        assert_eq!(diff.switches_missing, 0);
        // Fabric is fully functional again.
        let nt = sm.network().num_terminals();
        assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
        assert_eq!(sm.network().num_cables(), net.num_cables() - 1);
    }

    #[test]
    fn root_switch_failure_survivable_on_fat_tree() {
        let net = fat_tree();
        let sm_node = net.terminals()[0];
        let mut sm = SmLoop::bring_up(DfSssp::new(), net.clone(), sm_node).unwrap();
        // Roots (level n-1) carry no terminals; killing one must reroute.
        let root = *net
            .switches()
            .iter()
            .find(|&&s| net.node(s).level == Some(1))
            .unwrap();
        let diff = sm.handle(FabricEvent::SwitchDown(root)).unwrap();
        assert_eq!(diff.switches_missing, 0, "survivors all matched by name");
        assert!(diff.entries_changed > 0);
        assert_eq!(sm.network().num_switches(), net.num_switches() - 1);
        let nt = sm.network().num_terminals();
        assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
    }

    #[test]
    fn disconnecting_event_is_rejected_and_state_survives() {
        // A ring of 3 with a pendant: killing the pendant's only cable
        // strands its terminal -> the run fails, state unchanged.
        let mut b = fabric::NetworkBuilder::new();
        let s0 = b.add_switch("s0", 8);
        let s1 = b.add_switch("s1", 8);
        let s2 = b.add_switch("s2", 8);
        b.link(s0, s1).unwrap();
        b.link(s1, s2).unwrap();
        b.link(s2, s0).unwrap();
        let pendant = b.add_switch("pendant", 4);
        let (bridge, _) = b.link(pendant, s0).unwrap();
        for i in 0..4 {
            let t = b.add_terminal(format!("t{i}"));
            b.link(t, [s0, s1, s2, pendant][i]).unwrap();
        }
        let net = b.build();
        let sm_node = net.terminals()[0];
        let mut sm = SmLoop::bring_up(DfSssp::new(), net.clone(), sm_node).unwrap();
        let before_cables = sm.network().num_cables();
        let err = sm.handle(FabricEvent::CableDown(bridge));
        assert!(err.is_err(), "stranding the pendant must fail");
        // Old state intact and still serving.
        assert_eq!(sm.network().num_cables(), before_cables);
        let nt = sm.network().num_terminals();
        assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
    }

    #[test]
    fn consecutive_failures_accumulate() {
        let net = topo::kary_ntree(4, 3);
        let sm_node = net.terminals()[0];
        let mut sm = SmLoop::bring_up(DfSssp::new(), net.clone(), sm_node).unwrap();
        for _ in 0..3 {
            let victim = an_uplink(sm.network());
            sm.handle(FabricEvent::CableDown(victim)).unwrap();
        }
        assert_eq!(sm.network().num_cables(), net.num_cables() - 3);
        let nt = sm.network().num_terminals();
        assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
    }
}
