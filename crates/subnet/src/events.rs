//! The subnet manager's steady-state loop: react to fabric events.
//!
//! OpenSM alternates heavy sweeps (full rediscovery) with light sweeps
//! (port-state polls); on a topology change it re-runs routing and pushes
//! only the changed LFT entries. This module models that loop over the
//! simulated fabric — including the part real deployments live and die
//! by: *recovery*. Cables and switches come back up, links flap, and a
//! fabric that cannot be routed within the hardware's VL budget still has
//! to carry traffic somehow.
//!
//! [`SmLoop`] therefore keeps the pristine *reference* network plus the
//! set of hardware currently down, and rebuilds its serving view from
//! those on every reroute. Events address hardware by its reference id
//! (the stable physical identity), so `CableUp(c)` after `CableDown(c)`
//! is a true inverse. A batch of events is *coalesced*: only the net
//! change of the down-set triggers a reroute, so a flapping link costs
//! one reroute, not one per transition.
//!
//! When a reroute cannot succeed as-is, the loop walks a graceful-
//! degradation ladder, recording each [`Rung`] it fires:
//!
//! 1. **Quarantine** — if the view is disconnected, route the largest
//!    strongly-connected core and quarantine the stranded terminals
//!    (they rejoin automatically when a recovery event reconnects them).
//! 2. **Widened VLs** — on [`RouteError::NeedMoreLayers`], double the
//!    engine's virtual-layer budget up to the hardware cap and retry.
//! 3. **Fallback engine** — if the primary engine still fails, rerun
//!    the cycle with a configured deadlock-free fallback (Up*/Down* by
//!    default).
//!
//! The primary engine additionally runs inside the [`crate::armor`]
//! containment: a panicking engine is caught ([`SmError::EnginePanicked`])
//! and retried a bounded number of times with deterministic jittered
//! backoff before the fallback rung fires, and a [`CircuitBreaker`]
//! skips a repeatedly crashing primary entirely until a cooldown probe
//! succeeds. The loop itself never unwinds.
//!
//! Every successful reroute also emits a [`UpdatePlan`] describing how
//! to push the new tables without a deadlock-capable update window (see
//! [`crate::transition`]).

use crate::armor::{contain, BreakerState, CircuitBreaker, RetryPolicy};
use crate::lft::LftDiff;
use crate::manager::{ProgrammedFabric, SmError, SubnetManager};
use crate::transition::{self, UpdatePlan};
use baselines::UpDown;
use dfsssp_core::{RouteError, RoutingEngine};
use fabric::{degrade, ChannelId, Network, NodeId};
use rustc_hash::FxHashSet;
use std::time::{Duration, Instant};
use telemetry::{counters, hists, phases, RecorderHandle};

/// A fabric event the SM reacts to. Channel and node ids refer to the
/// *reference* network the loop was brought up with, not the (renumbered)
/// degraded view — physical identity, like a trap's port GUID.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FabricEvent {
    /// A cable went down (both directions of the pair).
    CableDown(ChannelId),
    /// A previously failed cable was repaired.
    CableUp(ChannelId),
    /// A switch died (all attached cables with it).
    SwitchDown(NodeId),
    /// A previously failed switch was repaired (its surviving cables
    /// come back with it; individually failed cables stay down).
    SwitchUp(NodeId),
}

/// One rung of the graceful-degradation ladder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rung {
    /// The event was handled by plain rerouting; no escalation.
    Baseline,
    /// Stranded terminals were quarantined and the surviving core routed.
    Quarantine {
        /// Quarantined terminals (reference ids).
        stranded: Vec<NodeId>,
    },
    /// The engine's VL budget was raised to `budget` and the run retried.
    WidenedVls {
        /// The new layer budget.
        budget: usize,
    },
    /// The primary engine failed; the named fallback engine served.
    Fallback {
        /// Name of the fallback engine.
        engine: String,
    },
    /// V007 refuted single-layer deadlock-free-routing existence for
    /// the degraded view (`vet::existence`): whatever the engine does
    /// next, multiple virtual layers are provably *necessary*, not a
    /// heuristic choice. The rung cites the witness size.
    MultiLayerForced {
        /// Channels in the forced dependency cycle witness.
        witness: usize,
    },
    /// The serving side was thinning best-effort load (adaptive shed)
    /// while this event's tables published: a reroute storm coinciding
    /// with overload. Appended by `serve::RouteServer`, never by the SM
    /// itself. The admitted rate is in permille and — by the shed
    /// controller's floor — always positive.
    OverloadShed {
        /// Fraction of best-effort submissions still admitted (permille).
        admitted_permille: u32,
    },
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rung::Baseline => write!(f, "baseline"),
            Rung::Quarantine { stranded } => write!(f, "quarantine({})", stranded.len()),
            Rung::WidenedVls { budget } => write!(f, "widened-vls({budget})"),
            Rung::Fallback { engine } => write!(f, "fallback({engine})"),
            Rung::MultiLayerForced { witness } => write!(f, "multi-layer-forced({witness})"),
            Rung::OverloadShed { admitted_permille } => {
                write!(f, "overload-shed({admitted_permille})")
            }
        }
    }
}

/// What handling one event (or coalesced batch) did to the fabric.
#[derive(Clone, Debug)]
pub struct EventOutcome {
    /// Escalation rungs that fired, in order. Empty = baseline reroute.
    pub rungs: Vec<Rung>,
    /// SMP write cost relative to the previous programming.
    pub diff: LftDiff,
    /// How the new tables can be pushed safely.
    pub plan: UpdatePlan,
    /// Terminals currently quarantined (reference ids, sorted).
    pub quarantined: Vec<NodeId>,
    /// Events coalesced into this outcome.
    pub coalesced: usize,
    /// Whether a reroute actually ran (false: the batch was a no-op,
    /// e.g. a flap that ended where it started).
    pub rerouted: bool,
    /// Primary-engine retries spent on this event (panic containment).
    pub retries: usize,
    /// Virtual layers of the serving routing after the event.
    pub vls: usize,
    /// The V007 existence verdict for the served view, one line — the
    /// proof the admission decision cites (`None` for no-op batches).
    pub existence: Option<String>,
    /// Wall-clock reroute time.
    pub elapsed: Duration,
}

impl EventOutcome {
    /// The rung that resolved the event: the last escalation that fired,
    /// or [`Rung::Baseline`] when none was needed.
    pub fn resolved_by(&self) -> Rung {
        self.rungs.last().cloned().unwrap_or(Rung::Baseline)
    }
}

/// A running subnet manager with its current view of the fabric.
pub struct SmLoop<E> {
    sm: SubnetManager<E>,
    /// Deadlock-free engine of last resort (`None` disables the rung).
    /// `Send` so the whole loop can serve from a background writer
    /// thread (the route server's deployment shape).
    fallback: Option<Box<dyn RoutingEngine + Send>>,
    /// The pristine fabric all event ids refer to.
    reference: Network,
    /// Canonical ids (lower id of each direction pair) of failed cables.
    down_cables: FxHashSet<ChannelId>,
    /// Failed switches.
    down_switches: FxHashSet<NodeId>,
    /// The serving view (reference minus down hardware and quarantine).
    net: Network,
    current: ProgrammedFabric,
    /// Optional source of pre-certified update plans (an incremental
    /// engine that knows exactly which columns it changed). Consulted
    /// before [`transition::plan_update`]; `None` answers fall through
    /// to the full planner.
    plan_provider: Option<Box<dyn transition::DiffPlanProvider + Send>>,
    /// Quarantined terminals (reference ids, sorted).
    quarantined: Vec<NodeId>,
    /// Outcome of the most recent bring-up or event.
    last: EventOutcome,
    /// Panic breaker over the primary engine.
    breaker: CircuitBreaker,
    /// Retry policy for contained primary-engine panics.
    retry: RetryPolicy,
    /// Telemetry sink: reroute latency (`reroute` phase, `reroute_us`
    /// histogram) and the `reroutes`/`events_coalesced`/`rung_*`
    /// counters.
    recorder: RecorderHandle,
}

impl<E: RoutingEngine> SmLoop<E> {
    /// Bring up the fabric: initial heavy sweep + routing + programming,
    /// through the same escalation ladder events use (so a fabric that
    /// is *born* partitioned or VL-starved still comes up degraded).
    pub fn bring_up(engine: E, net: Network, sm_node: NodeId) -> Result<Self, SmError> {
        let sm = SubnetManager::new(engine);
        let mut looped = SmLoop {
            sm,
            fallback: Some(Box::new(UpDown::new())),
            reference: net.clone(),
            down_cables: FxHashSet::default(),
            down_switches: FxHashSet::default(),
            net: net.clone(),
            plan_provider: None,
            // Placeholder until the first reroute below replaces it.
            current: ProgrammedFabric {
                discovery: crate::discovery::DiscoveredFabric::default(),
                lids: crate::lid::LidMap::assign(&net),
                routes: fabric::Routes::new(&net, "uninitialized"),
                tables: crate::lft::FabricTables::default(),
                pairs_validated: 0,
            },
            quarantined: Vec::new(),
            last: EventOutcome {
                rungs: Vec::new(),
                diff: LftDiff::default(),
                plan: UpdatePlan::noop(),
                quarantined: Vec::new(),
                coalesced: 0,
                rerouted: false,
                retries: 0,
                vls: 0,
                existence: None,
                elapsed: Duration::ZERO,
            },
            breaker: CircuitBreaker::default(),
            retry: RetryPolicy::default(),
            recorder: telemetry::noop(),
        };
        let outcome = looped.reroute(0, &[], Some(sm_node))?;
        looped.last = outcome;
        Ok(looped)
    }

    /// Replace the fallback engine (`None` disables the fallback rung).
    pub fn set_fallback(&mut self, fallback: Option<Box<dyn RoutingEngine + Send>>) {
        self.fallback = fallback;
    }

    /// Attach a transition-plan provider, consulted before the full
    /// planner on every post-bring-up reroute (see
    /// [`transition::DiffPlanProvider`]). `None` detaches it.
    pub fn set_plan_provider(
        &mut self,
        provider: Option<Box<dyn transition::DiffPlanProvider + Send>>,
    ) {
        self.plan_provider = provider;
    }

    /// Replace the panic circuit breaker (state resets with it).
    pub fn set_breaker(&mut self, breaker: CircuitBreaker) {
        self.breaker = breaker;
    }

    /// The panic circuit breaker guarding the primary engine.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Replace the retry policy for contained engine panics.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The retry policy for contained engine panics.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Attach a telemetry sink. The loop reports per-reroute latency and
    /// the escalation counters; the engine keeps whatever recorder its
    /// own config carries (attach there for phase-level detail).
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// The current (possibly degraded) serving view of the fabric.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The pristine reference network all event ids refer to.
    pub fn reference(&self) -> &Network {
        &self.reference
    }

    /// The current programmed state.
    pub fn programmed(&self) -> &ProgrammedFabric {
        &self.current
    }

    /// Terminals currently quarantined (reference ids, sorted).
    pub fn quarantined(&self) -> &[NodeId] {
        &self.quarantined
    }

    /// Outcome of the most recent bring-up or handled event.
    pub fn outcome(&self) -> &EventOutcome {
        &self.last
    }

    /// A light sweep: verify the current programming still connects every
    /// pair (cheap check against the unchanged fabric view). Returns the
    /// pair count.
    pub fn light_sweep(&self) -> Result<usize, SmError> {
        let mut pairs = 0;
        for &src in self.net.terminals() {
            for &dst in self.net.terminals() {
                if src == dst {
                    continue;
                }
                self.current
                    .tables
                    .walk(
                        &self.net,
                        &self.current.lids,
                        src,
                        self.current.lids.lid(dst),
                    )
                    .map_err(SmError::Walk)?;
                pairs += 1;
            }
        }
        Ok(pairs)
    }

    /// React to one fabric event. See [`Self::handle_batch`].
    pub fn handle(&mut self, event: FabricEvent) -> Result<EventOutcome, SmError> {
        self.handle_batch(&[event])
    }

    /// React to a batch of fabric events, coalescing them: the events
    /// update the down-set and a single reroute serves the net change.
    /// A batch whose net change is empty (a link flapping down and back
    /// up) is a no-op — `rerouted` is false in the outcome.
    ///
    /// On error (e.g. an invalid event id, or every ladder rung
    /// exhausted) the loop's state — down-sets included — is rolled
    /// back, so a follow-up repair event can be handled.
    pub fn handle_batch(&mut self, events: &[FabricEvent]) -> Result<EventOutcome, SmError> {
        let now = Instant::now();
        let stamped: Vec<(FabricEvent, Instant)> = events.iter().map(|&e| (e, now)).collect();
        self.handle_batch_at(&stamped)
    }

    /// [`Self::handle_batch`] with each event's own arrival timestamp
    /// preserved. Coalescing still folds the batch into (at most) one
    /// reroute, but the `reroute_ns` histogram gets one observation per
    /// *original* event — measured from that event's arrival to the end
    /// of the reroute that served it — so latency is attributed to the
    /// burst that triggered it, not averaged away by the fold.
    pub fn handle_batch_at(
        &mut self,
        events: &[(FabricEvent, Instant)],
    ) -> Result<EventOutcome, SmError> {
        let cables_before = self.down_cables.clone();
        let switches_before = self.down_switches.clone();
        for &(e, _) in events {
            if let Err(err) = self.apply(e) {
                self.down_cables = cables_before;
                self.down_switches = switches_before;
                return Err(err);
            }
        }
        if self.down_cables == cables_before && self.down_switches == switches_before {
            let outcome = EventOutcome {
                rungs: Vec::new(),
                diff: LftDiff::default(),
                plan: UpdatePlan::noop(),
                quarantined: self.quarantined.clone(),
                coalesced: events.len(),
                rerouted: false,
                retries: 0,
                vls: self.current.routes.num_layers() as usize,
                existence: self.last.existence.clone(),
                elapsed: Duration::ZERO,
            };
            self.last = outcome.clone();
            return Ok(outcome);
        }
        let stamps: Vec<Instant> = events.iter().map(|&(_, at)| at).collect();
        match self.reroute(events.len(), &stamps, None) {
            Ok(outcome) => {
                self.last = outcome.clone();
                Ok(outcome)
            }
            Err(e) => {
                self.down_cables = cables_before;
                self.down_switches = switches_before;
                Err(e)
            }
        }
    }

    /// Update the down-sets for one event (no reroute).
    fn apply(&mut self, event: FabricEvent) -> Result<(), SmError> {
        match event {
            FabricEvent::CableDown(c) => {
                self.down_cables.insert(self.canonical(c)?);
            }
            FabricEvent::CableUp(c) => {
                let c = self.canonical(c)?;
                self.down_cables.remove(&c);
            }
            FabricEvent::SwitchDown(s) => {
                self.check_switch(s)?;
                self.down_switches.insert(s);
            }
            FabricEvent::SwitchUp(s) => {
                self.check_switch(s)?;
                self.down_switches.remove(&s);
            }
        }
        Ok(())
    }

    /// Canonical id of a cable: the lower channel id of the pair.
    fn canonical(&self, c: ChannelId) -> Result<ChannelId, SmError> {
        if c.idx() >= self.reference.num_channels() {
            return Err(SmError::InvalidEvent(format!(
                "channel {} does not exist in the reference fabric",
                c.0
            )));
        }
        Ok(match self.reference.channel(c).rev {
            Some(r) if r.0 < c.0 => r,
            _ => c,
        })
    }

    fn check_switch(&self, s: NodeId) -> Result<(), SmError> {
        if s.idx() >= self.reference.num_nodes() || !self.reference.is_switch(s) {
            return Err(SmError::InvalidEvent(format!(
                "node {} is not a switch of the reference fabric",
                s.0
            )));
        }
        Ok(())
    }

    /// Rebuild the serving view from the reference and the down-sets,
    /// route it through the escalation ladder, plan the transition, and
    /// commit. `preferred_sm` pins the SM node on bring-up.
    fn reroute(
        &mut self,
        coalesced: usize,
        stamps: &[Instant],
        preferred_sm: Option<NodeId>,
    ) -> Result<EventOutcome, SmError> {
        let start = Instant::now();
        let mut rungs = Vec::new();

        // Both directions of every failed cable.
        let mut dead_ch: FxHashSet<ChannelId> = FxHashSet::default();
        for &c in &self.down_cables {
            dead_ch.insert(c);
            if let Some(r) = self.reference.channel(c).rev {
                dead_ch.insert(r);
            }
        }
        let mut view = degrade::remove(&self.reference, &self.down_switches, &dead_ch);

        // Rung 1: quarantine. If the view is not strongly connected,
        // route the best core and quarantine the stranded terminals.
        let mut quarantined: Vec<NodeId> = Vec::new();
        if !view.is_strongly_connected() {
            let (core, stranded) = degrade::extract_core(&view);
            for n in stranded {
                if view.is_terminal(n) {
                    let name = &view.node(n).name;
                    let r = self.reference.node_by_name(name).ok_or_else(|| {
                        SmError::InvalidEvent(format!("stranded node {name} not in reference"))
                    })?;
                    quarantined.push(r);
                }
            }
            quarantined.sort_unstable_by_key(|n| n.0);
            rungs.push(Rung::Quarantine {
                stranded: quarantined.clone(),
            });
            view = core;
        }

        let sm_node = preferred_sm
            .filter(|&n| n.idx() < self.reference.num_nodes())
            .and_then(|n| view.node_by_name(&self.reference.node(n).name))
            .or_else(|| view.terminals().first().copied())
            .ok_or(SmError::PartialDiscovery {
                found: 0,
                total: view.num_nodes(),
            })?;

        // V007: decide what the degraded view still *admits* before
        // spending engine budget on it. The quarantine rung left the
        // view strongly connected, so the verdict here is either a
        // certificate (cited in the outcome), a proof that one layer
        // cannot possibly suffice (recorded as its own rung), or
        // undecided (the engine settles it empirically).
        let existence = match vet::existence(&view) {
            vet::Existence::Exists { roots, pairs } => format!(
                "certified: up*/down* from {} root(s) covers {pairs} pair(s)",
                roots.len()
            ),
            vet::Existence::NotExists(vet::ExistenceWitness::ForcedCycle { channels }) => {
                rungs.push(Rung::MultiLayerForced {
                    witness: channels.len(),
                });
                format!(
                    "refuted: forced dependency cycle of {} channel(s); multiple layers required",
                    channels.len()
                )
            }
            vet::Existence::NotExists(vet::ExistenceWitness::OneWayPair { src, dst }) => {
                // Cannot happen after the strong-connectivity extraction
                // above; record it rather than panic if degrade ever
                // changes semantics.
                format!("refuted: one-way pair {src:?} -> {dst:?} survived core extraction")
            }
            vet::Existence::Undecided { src, dst } => {
                format!("undecided: pair {src:?} -> {dst:?} uncertified")
            }
        };

        // Rungs 2 and 3: widen the VL budget, then fall back. The
        // primary engine runs contained (panics become typed errors,
        // retried with bounded backoff) and behind the circuit breaker:
        // while it is open, the loop serves straight from the fallback.
        let mut on_fallback = false;
        let mut retries = 0usize;
        let rec = self.recorder.clone();
        if self.fallback.is_some() {
            let was_open = self.breaker.state() == BreakerState::Open;
            if !self.breaker.allow() {
                on_fallback = true;
                rungs.push(Rung::Fallback {
                    engine: self.fallback.as_deref().unwrap().name().to_string(),
                });
            } else if was_open {
                // The cooldown just expired: this attempt is the probe.
                rec.add(counters::BREAKER_PROBES, 1);
            }
        }
        let fabric = loop {
            let result = if on_fallback {
                let fb = self.fallback.as_deref().expect("fallback engaged");
                contain(|| self.sm.run_with(fb, &view, sm_node))
            } else {
                contain(|| self.sm.run(&view, sm_node))
            };
            match result {
                Ok(f) => {
                    if !on_fallback {
                        self.breaker.record_success();
                    }
                    break f;
                }
                Err(SmError::EnginePanicked(msg)) if !on_fallback => {
                    rec.add(counters::ENGINE_PANICS, 1);
                    if self.breaker.record_failure() {
                        rec.add(counters::BREAKER_OPENS, 1);
                    }
                    if retries < self.retry.max_retries {
                        retries += 1;
                        rec.add(counters::ENGINE_RETRIES, 1);
                        self.retry.pause(retries);
                    } else if self.fallback.is_some() {
                        on_fallback = true;
                        rungs.push(Rung::Fallback {
                            engine: self.fallback.as_deref().unwrap().name().to_string(),
                        });
                    } else {
                        return Err(SmError::EnginePanicked(msg));
                    }
                }
                Err(SmError::Routing(RouteError::NeedMoreLayers { .. }))
                    if !on_fallback && self.widenable() =>
                {
                    let config = self.sm.engine.config();
                    let budget = config
                        .max_layers
                        .saturating_mul(2)
                        .min(self.sm.hardware_vls);
                    self.sm.engine.set_config(config.max_layers(budget));
                    rungs.push(Rung::WidenedVls { budget });
                }
                Err(e) if !on_fallback && self.fallback.is_some() && engine_failure(&e) => {
                    on_fallback = true;
                    rungs.push(Rung::Fallback {
                        engine: self.fallback.as_deref().unwrap().name().to_string(),
                    });
                }
                Err(e) => return Err(e),
            }
        };

        // Transition safety: remap the serving tables onto the new view
        // and plan an update window that cannot deadlock. On first boot
        // there is no prior programming: no in-flight traffic, no diff.
        let first_boot = self.current.discovery.nodes.is_empty();
        let (plan, diff) = if first_boot {
            (
                transition::plan_update(&view, None, &fabric.routes, self.sm.hardware_vls),
                LftDiff::default(),
            )
        } else {
            let old = transition::remap_routes(&self.net, &self.current.routes, &view);
            // A plan provider holding a valid certificate for exactly
            // this (old, new) pair answers in O(change); otherwise the
            // full planner re-derives safety from scratch.
            let plan = self
                .plan_provider
                .as_deref()
                .and_then(|p| p.diff_plan(&view, &old, &fabric.routes, self.sm.hardware_vls))
                .unwrap_or_else(|| {
                    transition::plan_update(&view, Some(&old), &fabric.routes, self.sm.hardware_vls)
                });
            (plan, fabric.tables.diff(&view, &self.current.tables, &self.net))
        };
        let outcome = EventOutcome {
            rungs,
            diff,
            plan,
            quarantined: quarantined.clone(),
            coalesced,
            rerouted: true,
            retries,
            vls: fabric.routes.num_layers() as usize,
            existence: Some(existence),
            elapsed: start.elapsed(),
        };
        self.net = view;
        self.current = fabric;
        self.quarantined = quarantined;
        self.record(&outcome, stamps);
        Ok(outcome)
    }

    /// Report one reroute to the attached recorder. `stamps` are the
    /// arrival times of the events this reroute coalesced: each gets
    /// its own `reroute_ns` observation (arrival → now), so a burst's
    /// latency distribution survives the fold.
    fn record(&self, outcome: &EventOutcome, stamps: &[Instant]) {
        let rec = &*self.recorder;
        if !rec.enabled() {
            return;
        }
        let nanos = outcome.elapsed.as_nanos() as u64;
        rec.phase(phases::REROUTE, nanos);
        rec.observe(hists::REROUTE_US, nanos / 1_000);
        let end = Instant::now();
        for &at in stamps {
            rec.observe(
                hists::REROUTE_NS,
                end.saturating_duration_since(at).as_nanos() as u64,
            );
        }
        rec.add(counters::REROUTES, 1);
        rec.add(counters::EVENTS_COALESCED, outcome.coalesced as u64);
        for rung in &outcome.rungs {
            let counter = match rung {
                Rung::Baseline => continue,
                Rung::Quarantine { .. } => counters::RUNG_QUARANTINE,
                Rung::WidenedVls { .. } => counters::RUNG_WIDENED_VLS,
                Rung::Fallback { .. } => counters::RUNG_FALLBACK,
                Rung::MultiLayerForced { .. } => counters::RUNG_MULTI_LAYER_FORCED,
                // Appended downstream by the route server (the SM never
                // sees it), which records it itself; counted here too in
                // case an outcome is replayed through record().
                Rung::OverloadShed { .. } => counters::RUNG_OVERLOAD_SHED,
            };
            rec.add(counter, 1);
        }
    }

    fn widenable(&self) -> bool {
        // `config()` is total, so gate on `tunables()`: an engine that
        // ignores `set_config` must not consume a ladder rung on a
        // widen that cannot take effect.
        self.sm.engine.tunables() && self.sm.engine.config().max_layers < self.sm.hardware_vls
    }
}

/// Errors the fallback engine can plausibly fix: the engine could not
/// produce a deployable routing (or crashed trying). Sweep and walk
/// failures are fabric problems no engine swap will cure.
fn engine_failure(e: &SmError) -> bool {
    matches!(
        e,
        SmError::Routing(_)
            | SmError::CyclicLayers(_)
            | SmError::TooManyVls { .. }
            | SmError::EnginePanicked(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsssp_core::{DfSssp, Sssp};
    use fabric::topo;

    /// A redundant fabric where any single uplink can fail.
    fn fat_tree() -> Network {
        topo::kary_ntree(4, 2)
    }

    /// Distinct switch-switch cables of `net` (canonical direction).
    fn uplinks(net: &Network) -> Vec<ChannelId> {
        net.channels()
            .filter(|(id, ch)| {
                net.is_switch(ch.src) && net.is_switch(ch.dst) && ch.rev.is_none_or(|r| r.0 > id.0)
            })
            .map(|(id, _)| id)
            .collect()
    }

    #[test]
    fn bring_up_and_light_sweep() {
        let net = fat_tree();
        let sm_node = net.terminals()[0];
        let sm = SmLoop::bring_up(DfSssp::new(), net.clone(), sm_node).unwrap();
        let nt = net.num_terminals();
        assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
        assert!(sm.outcome().rerouted);
        assert_eq!(sm.outcome().resolved_by(), Rung::Baseline);
        // A healthy fabric's admission cites the V007 certificate.
        let proof = sm.outcome().existence.as_deref().unwrap();
        assert!(proof.starts_with("certified"), "{proof}");
    }

    #[test]
    fn one_way_ring_forces_the_multi_layer_rung() {
        // A unidirectional ring is strongly connected (no quarantine),
        // but V007 refutes single-layer existence: the ladder must
        // record that multiple layers are *provably* required, and the
        // outcome cites the refutation.
        let mut b = fabric::NetworkBuilder::new();
        let s: Vec<_> = (0..4).map(|i| b.add_switch(format!("s{i}"), 4)).collect();
        let t: Vec<_> = (0..4).map(|i| b.add_terminal(format!("t{i}"))).collect();
        for i in 0..4 {
            b.add_channel(s[i], s[(i + 1) % 4]).unwrap();
            b.link(t[i], s[i]).unwrap();
        }
        let net = b.build();
        let sm_node = net.terminals()[0];
        let sm = SmLoop::bring_up(DfSssp::new(), net, sm_node).unwrap();
        let outcome = sm.outcome();
        assert!(
            outcome
                .rungs
                .iter()
                .any(|r| matches!(r, Rung::MultiLayerForced { witness } if *witness > 0)),
            "rungs: {:?}",
            outcome.rungs
        );
        let proof = outcome.existence.as_deref().unwrap();
        assert!(proof.starts_with("refuted"), "{proof}");
        // And the engine indeed needed more than one layer to serve it.
        assert!(outcome.vls > 1, "vls: {}", outcome.vls);
    }

    #[test]
    fn cable_failure_reroutes_with_small_diff() {
        let net = fat_tree();
        let sm_node = net.terminals()[0];
        let mut sm = SmLoop::bring_up(DfSssp::new(), net.clone(), sm_node).unwrap();
        let victim = uplinks(&net)[0];
        let outcome = sm.handle(FabricEvent::CableDown(victim)).unwrap();
        assert!(outcome.rerouted);
        assert!(outcome.diff.entries_changed > 0);
        assert_eq!(outcome.diff.switches_missing, 0);
        assert_eq!(outcome.resolved_by(), Rung::Baseline);
        assert!(outcome.quarantined.is_empty());
        // Fabric is fully functional again.
        let nt = sm.network().num_terminals();
        assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
        assert_eq!(sm.network().num_cables(), net.num_cables() - 1);
    }

    #[test]
    fn cable_recovery_restores_the_reference_state() {
        let net = fat_tree();
        let sm_node = net.terminals()[0];
        let mut sm = SmLoop::bring_up(DfSssp::new(), net.clone(), sm_node).unwrap();
        let victim = uplinks(&net)[0];
        sm.handle(FabricEvent::CableDown(victim)).unwrap();
        let outcome = sm.handle(FabricEvent::CableUp(victim)).unwrap();
        assert!(outcome.rerouted);
        assert_eq!(sm.network().num_cables(), net.num_cables());
        let nt = sm.network().num_terminals();
        assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
    }

    #[test]
    fn flap_burst_coalesces_into_one_reroute() {
        let net = fat_tree();
        let sm_node = net.terminals()[0];
        let mut sm = SmLoop::bring_up(DfSssp::new(), net.clone(), sm_node).unwrap();
        let c = uplinks(&net)[0];
        // Down-up-down-up: net effect nothing. One no-op, zero reroutes.
        let outcome = sm
            .handle_batch(&[
                FabricEvent::CableDown(c),
                FabricEvent::CableUp(c),
                FabricEvent::CableDown(c),
                FabricEvent::CableUp(c),
            ])
            .unwrap();
        assert!(!outcome.rerouted);
        assert_eq!(outcome.coalesced, 4);
        assert_eq!(outcome.plan.describe(), "no-op");
        // Down-up-down: net effect one failure. Exactly one reroute.
        let outcome = sm
            .handle_batch(&[
                FabricEvent::CableDown(c),
                FabricEvent::CableUp(c),
                FabricEvent::CableDown(c),
            ])
            .unwrap();
        assert!(outcome.rerouted);
        assert_eq!(outcome.coalesced, 3);
        assert_eq!(sm.network().num_cables(), net.num_cables() - 1);
    }

    #[test]
    fn root_switch_failure_survivable_on_fat_tree() {
        let net = fat_tree();
        let sm_node = net.terminals()[0];
        let mut sm = SmLoop::bring_up(DfSssp::new(), net.clone(), sm_node).unwrap();
        // Roots (level n-1) carry no terminals; killing one must reroute.
        let root = *net
            .switches()
            .iter()
            .find(|&&s| net.node(s).level == Some(1))
            .unwrap();
        let outcome = sm.handle(FabricEvent::SwitchDown(root)).unwrap();
        assert_eq!(
            outcome.diff.switches_missing, 0,
            "survivors all matched by name"
        );
        assert!(outcome.diff.entries_changed > 0);
        assert!(outcome.quarantined.is_empty());
        assert_eq!(sm.network().num_switches(), net.num_switches() - 1);
        let nt = sm.network().num_terminals();
        assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
        // And it comes back.
        sm.handle(FabricEvent::SwitchUp(root)).unwrap();
        assert_eq!(sm.network().num_switches(), net.num_switches());
    }

    #[test]
    fn switch_with_terminals_quarantines_them() {
        // Killing a leaf switch strands its terminals: they are
        // quarantined, the rest of the fabric keeps serving.
        let net = fat_tree();
        let sm_node = net.terminals()[0];
        let mut sm = SmLoop::bring_up(DfSssp::new(), net.clone(), sm_node).unwrap();
        let leaf = *net
            .switches()
            .iter()
            .find(|&&s| net.node(s).level == Some(0))
            .unwrap();
        let attached: Vec<NodeId> = net
            .out_channels(leaf)
            .iter()
            .map(|&c| net.channel(c).dst)
            .filter(|&n| net.is_terminal(n))
            .collect();
        assert!(!attached.is_empty(), "leaf must carry terminals");
        let outcome = sm.handle(FabricEvent::SwitchDown(leaf)).unwrap();
        assert!(matches!(outcome.resolved_by(), Rung::Quarantine { .. }));
        let mut expect: Vec<NodeId> = attached.clone();
        expect.sort_unstable_by_key(|n| n.0);
        assert_eq!(outcome.quarantined, expect);
        assert_eq!(sm.quarantined(), &expect[..]);
        // Surviving terminals still all talk to each other.
        let nt = sm.network().num_terminals();
        assert_eq!(nt, net.num_terminals() - attached.len());
        assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
        // Recovery un-quarantines automatically.
        let outcome = sm.handle(FabricEvent::SwitchUp(leaf)).unwrap();
        assert!(outcome.quarantined.is_empty());
        assert!(sm.quarantined().is_empty());
        assert_eq!(sm.network().num_terminals(), net.num_terminals());
        let nt = net.num_terminals();
        assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
    }

    #[test]
    fn stranding_cable_cut_quarantines_and_reconnects() {
        // A ring of 3 with a pendant: killing the pendant's only cable
        // strands its terminal. The old loop rejected the event; the
        // ladder now quarantines t3 and keeps serving the ring.
        let mut b = fabric::NetworkBuilder::new();
        let s0 = b.add_switch("s0", 8);
        let s1 = b.add_switch("s1", 8);
        let s2 = b.add_switch("s2", 8);
        b.link(s0, s1).unwrap();
        b.link(s1, s2).unwrap();
        b.link(s2, s0).unwrap();
        let pendant = b.add_switch("pendant", 4);
        let (bridge, _) = b.link(pendant, s0).unwrap();
        let mut terms = Vec::new();
        for (i, &s) in [s0, s1, s2, pendant].iter().enumerate() {
            let t = b.add_terminal(format!("t{i}"));
            b.link(t, s).unwrap();
            terms.push(t);
        }
        let net = b.build();
        let sm_node = net.terminals()[0];
        let mut sm = SmLoop::bring_up(DfSssp::new(), net.clone(), sm_node).unwrap();
        let outcome = sm.handle(FabricEvent::CableDown(bridge)).unwrap();
        assert_eq!(outcome.quarantined, vec![terms[3]]);
        assert!(matches!(outcome.resolved_by(), Rung::Quarantine { .. }));
        let nt = sm.network().num_terminals();
        assert_eq!(nt, 3);
        assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
        // The repair reconnects the quarantined terminal.
        let outcome = sm.handle(FabricEvent::CableUp(bridge)).unwrap();
        assert!(outcome.quarantined.is_empty());
        assert_eq!(sm.network().num_terminals(), 4);
        assert_eq!(sm.light_sweep().unwrap(), 4 * 3);
    }

    #[test]
    fn vl_starved_engine_widens_its_budget() {
        // A torus needs >1 layer; starting the engine at budget 1 forces
        // the widening rung on bring-up.
        let net = topo::torus(&[4, 4], 1);
        let engine = DfSssp {
            max_layers: 1,
            ..DfSssp::new()
        };
        let sm = SmLoop::bring_up(engine, net.clone(), net.terminals()[0]).unwrap();
        let widened: Vec<&Rung> = sm
            .outcome()
            .rungs
            .iter()
            .filter(|r| matches!(r, Rung::WidenedVls { .. }))
            .collect();
        assert!(!widened.is_empty(), "budget 1 must trigger widening");
        assert!(matches!(
            sm.outcome().resolved_by(),
            Rung::WidenedVls { .. }
        ));
        assert!(sm.outcome().vls > 1);
        let nt = net.num_terminals();
        assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
    }

    #[test]
    fn failing_engine_falls_back_to_updown() {
        // Plain SSSP produces a cyclic CDG on a ring; the SM refuses it
        // and the ladder swaps in the deadlock-free fallback.
        let net = topo::ring(5, 1);
        let sm = SmLoop::bring_up(Sssp::new(), net.clone(), net.terminals()[0]).unwrap();
        assert!(matches!(sm.outcome().resolved_by(), Rung::Fallback { .. }));
        assert_eq!(sm.programmed().routes.engine(), "Up*/Down*");
        let nt = net.num_terminals();
        assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
    }

    #[test]
    fn ladder_exhaustion_rolls_state_back() {
        // With the fallback disabled, SSSP on a ring has no rung left;
        // the event must fail and leave the serving state untouched.
        let net = topo::ring(5, 1);
        let mut sm = SmLoop::bring_up(DfSssp::new(), net.clone(), net.terminals()[0]).unwrap();
        sm.set_fallback(None);
        // Force a failure by breaking enough cables that the core route
        // still exists but... simpler: an invalid event id.
        let err = sm
            .handle(FabricEvent::CableDown(ChannelId(9999)))
            .unwrap_err();
        assert!(matches!(err, SmError::InvalidEvent(_)));
        let nt = net.num_terminals();
        assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
        // Down-set rolled back: a valid follow-up still works.
        let c = uplinks(&net)[0];
        let outcome = sm.handle(FabricEvent::CableDown(c)).unwrap();
        assert!(outcome.rerouted);
    }

    #[test]
    fn consecutive_failures_accumulate() {
        let net = topo::kary_ntree(4, 3);
        let sm_node = net.terminals()[0];
        let mut sm = SmLoop::bring_up(DfSssp::new(), net.clone(), sm_node).unwrap();
        for &victim in uplinks(&net).iter().take(3) {
            sm.handle(FabricEvent::CableDown(victim)).unwrap();
        }
        assert_eq!(sm.network().num_cables(), net.num_cables() - 3);
        let nt = sm.network().num_terminals();
        assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
    }

    #[test]
    fn batch_timestamps_survive_coalescing() {
        // Three events with distinct arrival times coalesce into one
        // reroute, but the reroute_ns histogram must get one observation
        // per original event — each at least the event's queueing delay.
        let net = fat_tree();
        let sm_node = net.terminals()[0];
        let mut sm = SmLoop::bring_up(DfSssp::new(), net.clone(), sm_node).unwrap();
        let collector = std::sync::Arc::new(telemetry::Collector::new());
        sm.set_recorder(collector.clone());
        let ups = uplinks(&net);
        let now = Instant::now();
        let early = now - Duration::from_millis(50);
        let outcome = sm
            .handle_batch_at(&[
                (FabricEvent::CableDown(ups[0]), early),
                (FabricEvent::CableDown(ups[1]), early),
                (FabricEvent::CableDown(ups[2]), now),
            ])
            .unwrap();
        assert!(outcome.rerouted);
        assert_eq!(outcome.coalesced, 3);
        let snap = collector.snapshot();
        let hist = snap.histograms.get(hists::REROUTE_NS).expect("reroute_ns");
        assert_eq!(hist.count, 3, "one observation per original event");
        // The two early events waited ≥50ms before the reroute started.
        assert!(hist.max >= 50_000_000, "max {} too small", hist.max);
        // Every observation covers at least the reroute itself.
        assert!(hist.min >= outcome.elapsed.as_nanos() as u64);
        // A plain handle_batch stamps all events "now": still one
        // observation each.
        let outcome = sm.handle_batch(&[FabricEvent::CableUp(ups[0])]).unwrap();
        assert!(outcome.rerouted);
        let snap = collector.snapshot();
        assert_eq!(snap.histograms[hists::REROUTE_NS].count, 4);
    }

    #[test]
    fn update_plans_accompany_every_reroute() {
        let net = fat_tree();
        let sm_node = net.terminals()[0];
        let mut sm = SmLoop::bring_up(DfSssp::new(), net.clone(), sm_node).unwrap();
        let outcome = sm.handle(FabricEvent::CableDown(uplinks(&net)[0])).unwrap();
        assert!(outcome.plan.all_vetted());
        assert!(!outcome.plan.stages.is_empty());
    }
}
