//! Local identifier (LID) assignment.
//!
//! InfiniBand addresses ports by 16-bit LIDs assigned by the subnet
//! manager. We assign one LID per node (base LID, LMC = 0), terminals
//! first — so terminal LIDs are dense, which keeps the LFTs compact.

use fabric::{Network, NodeId};
use serde::{Deserialize, Serialize};

/// A local identifier. Valid unicast LIDs are `1..=0xBFFF`; 0 means
/// unassigned.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Lid(pub u16);

impl Lid {
    /// Whether this is an assigned unicast LID.
    pub fn is_valid(self) -> bool {
        self.0 >= 1 && self.0 <= 0xBFFF
    }
}

/// Bidirectional node ↔ LID mapping.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LidMap {
    by_node: Vec<u16>,
    node_by_lid: Vec<u32>,
}

impl LidMap {
    /// Assign LIDs: terminals get `1..=T`, switches follow.
    pub fn assign(net: &Network) -> LidMap {
        assert!(
            net.num_nodes() < 0xBFFF,
            "fabric exceeds the unicast LID space"
        );
        let mut by_node = vec![0u16; net.num_nodes()];
        let mut node_by_lid = vec![u32::MAX; net.num_nodes() + 1];
        let mut next = 1u16;
        for &t in net.terminals() {
            by_node[t.idx()] = next;
            node_by_lid[next as usize] = t.0;
            next += 1;
        }
        for &s in net.switches() {
            by_node[s.idx()] = next;
            node_by_lid[next as usize] = s.0;
            next += 1;
        }
        LidMap {
            by_node,
            node_by_lid,
        }
    }

    /// LID of a node.
    pub fn lid(&self, node: NodeId) -> Lid {
        Lid(self.by_node[node.idx()])
    }

    /// Node owning a LID, if assigned.
    pub fn node(&self, lid: Lid) -> Option<NodeId> {
        match self.node_by_lid.get(lid.0 as usize) {
            Some(&n) if n != u32::MAX => Some(NodeId(n)),
            _ => None,
        }
    }

    /// Highest assigned LID (the LFT length).
    pub fn max_lid(&self) -> Lid {
        Lid((self.node_by_lid.len() - 1) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::topo;

    #[test]
    fn terminals_get_dense_low_lids() {
        let net = topo::ring(4, 2);
        let lids = LidMap::assign(&net);
        for (i, &t) in net.terminals().iter().enumerate() {
            assert_eq!(lids.lid(t), Lid(i as u16 + 1));
        }
        for &s in net.switches() {
            assert!(lids.lid(s).0 > net.num_terminals() as u16);
        }
    }

    #[test]
    fn mapping_is_bijective() {
        let net = topo::kary_ntree(2, 3);
        let lids = LidMap::assign(&net);
        for (id, _) in net.nodes() {
            let lid = lids.lid(id);
            assert!(lid.is_valid());
            assert_eq!(lids.node(lid), Some(id));
        }
        assert_eq!(lids.node(Lid(0)), None);
        assert_eq!(lids.max_lid().0 as usize, net.num_nodes());
    }

    #[test]
    fn lid_zero_is_invalid() {
        assert!(!Lid(0).is_valid());
        assert!(Lid(1).is_valid());
        assert!(!Lid(0xC000).is_valid()); // multicast space
    }
}
