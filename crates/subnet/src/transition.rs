//! Safe table transitions: remapping an old routing onto a changed
//! fabric and planning the update window.
//!
//! Reprogramming a live fabric is not atomic: while the SM walks the
//! switches, in-flight packets can follow any mix of old and new
//! entries. The update window is deadlock-safe iff the *union* of the
//! old and new per-layer channel dependency graphs is acyclic (the
//! Dally & Seitz condition applied to the mixed state). When it is,
//! tables can be pushed directly; when it is not, [`plan_update`] emits
//! a destination-batched drain-and-swap plan whose every intermediate
//! state is vetted.
//!
//! The safety argument for a staged plan: each stage drains traffic
//! toward its destination batch before swapping those columns, so
//! during a stage's window the *active* dependency edges are a subset
//! of the stage's post-state edges — and every post-state is checked
//! acyclic with `vet` before the plan is emitted.

use fabric::{Network, NodeId, Routes};
use rustc_hash::{FxHashMap, FxHashSet};
use serde::Serialize;

/// Beyond this many changed destinations the per-stage vetting cost of
/// greedy batching is not worth it; the plan falls back to one drained
/// bulk stage (safe by construction, just slower for the fabric).
const MAX_GREEDY_DESTS: usize = 64;

/// One stage of a staged update: swap the table columns of `dests`.
#[derive(Clone, Debug, Serialize)]
pub struct UpdateStage {
    /// Terminal indices whose columns this stage reprograms.
    pub dests: Vec<usize>,
    /// Switch-table entries rewritten by this stage (SMP set cost).
    pub entries: usize,
    /// Whether traffic toward `dests` must be drained before the swap.
    pub drained: bool,
    /// Whether the stage's post-state passed the static analyzer.
    pub vetted: bool,
}

/// A plan for moving the fabric from one programmed state to another.
#[derive(Clone, Debug, Serialize)]
pub struct UpdatePlan {
    /// The union CDG was acyclic: all entries can be pushed in one
    /// unsynchronized sweep.
    pub direct: bool,
    /// The stages, in order. Empty means nothing changed.
    pub stages: Vec<UpdateStage>,
    /// Layers whose old∪new dependency graph was cyclic (the reason the
    /// plan is staged). Empty for direct plans.
    pub hazard_layers: Vec<u8>,
}

impl UpdatePlan {
    /// A plan for "nothing changed".
    pub fn noop() -> Self {
        UpdatePlan {
            direct: true,
            stages: Vec::new(),
            hazard_layers: Vec::new(),
        }
    }

    /// Total switch-table entries rewritten across all stages.
    pub fn total_entries(&self) -> usize {
        self.stages.iter().map(|s| s.entries).sum()
    }

    /// Whether every stage's post-state passed the analyzer.
    pub fn all_vetted(&self) -> bool {
        self.stages.iter().all(|s| s.vetted)
    }

    /// Short human description: `no-op`, `direct`, `staged(3)`,
    /// `staged(2)+drain`.
    pub fn describe(&self) -> String {
        if self.stages.is_empty() {
            return "no-op".into();
        }
        if self.direct {
            return "direct".into();
        }
        let drain = if self.stages.iter().any(|s| s.drained) {
            "+drain"
        } else {
            ""
        };
        format!("staged({}){drain}", self.stages.len())
    }
}

/// A source of cheaper, already-certified update plans.
///
/// An incremental routing engine that just computed `new` from `old`
/// knows *which* destination columns it touched and whether the mixed
/// old∪new state is acyclic — evidence [`plan_update`] would have to
/// re-derive from scratch. Implementors return `Some(plan)` when they
/// hold a valid safety certificate for this exact `(old, new)` pair and
/// `None` otherwise; callers fall back to [`plan_update`] on `None`, so
/// a provider never has to be conservative about *planning*, only about
/// *certifying*.
pub trait DiffPlanProvider {
    /// A transition plan for `old -> new` on `net`, or `None` if no
    /// certificate covering this pair is held. `hw_vls` is the hardware
    /// VL budget any staged vetting must respect.
    fn diff_plan(
        &self,
        net: &Network,
        old: &Routes,
        new: &Routes,
        hw_vls: usize,
    ) -> Option<UpdatePlan>;
}

/// Re-express `old` (tables for `old_net`) against `new_net`.
///
/// Nodes are matched by name and channels by `(source node, source
/// port)` — the invariant `degrade` preserves. Entries whose node,
/// channel, or destination no longer exists are dropped; virtual layers
/// of surviving terminal pairs are carried over. The result always has
/// `new_net`'s shape, so it can be compared and vetted against the new
/// network (expect broken pairs where hardware vanished).
pub fn remap_routes(old_net: &Network, old: &Routes, new_net: &Network) -> Routes {
    let mut routes = Routes::new(new_net, old.engine());
    // Old node id per new node, matched by name.
    let old_node: Vec<Option<NodeId>> = new_net
        .nodes()
        .map(|(_, n)| old_net.node_by_name(&n.name))
        .collect();
    // Old terminal index per new terminal index.
    let old_t: Vec<Option<usize>> = new_net
        .terminals()
        .iter()
        .map(|&t| old_node[t.idx()].and_then(|o| old_net.terminal_index(o)))
        .collect();
    // (src node, src port) -> channel in the new network.
    let mut by_port: FxHashMap<(u32, u16), u32> = FxHashMap::default();
    for (id, ch) in new_net.channels() {
        by_port.insert((ch.src.0, ch.src_port), id.0);
    }
    for (new_id, _) in new_net.nodes() {
        let Some(o) = old_node[new_id.idx()] else {
            continue;
        };
        for (new_dst, old_dst) in old_t.iter().enumerate() {
            let Some(od) = *old_dst else { continue };
            if od >= old.num_terminals() {
                continue;
            }
            let Some(ch) = old.next_hop(o, od) else {
                continue;
            };
            let port = old_net.channel(ch).src_port;
            if let Some(&c) = by_port.get(&(new_id.0, port)) {
                routes.set_next(new_id, new_dst, fabric::ChannelId(c));
            }
        }
    }
    for (new_src, old_src) in old_t.iter().enumerate() {
        let Some(os) = *old_src else { continue };
        for (new_dst, old_dst) in old_t.iter().enumerate() {
            let Some(od) = *old_dst else { continue };
            if os < old.num_terminals() && od < old.num_terminals() {
                routes.set_layer(new_src, new_dst, old.layer(os, od));
            }
        }
    }
    routes.recompute_num_layers();
    routes
}

/// Plan the transition from `old` to `new` on `net`.
///
/// `old` must already be expressed against `net` (see
/// [`remap_routes`]); pass `None` for an initial bring-up. `hw_vls` is
/// the hardware VL budget the per-stage vetting enforces.
pub fn plan_update(net: &Network, old: Option<&Routes>, new: &Routes, hw_vls: usize) -> UpdatePlan {
    let nt = net.num_terminals();
    let old = old.filter(|o| o.num_nodes() == net.num_nodes() && o.num_terminals() == nt);
    let Some(old) = old else {
        // Nothing programmed yet: no in-flight traffic, direct is safe.
        let dests: Vec<usize> = (0..nt).collect();
        let entries = dests.iter().map(|&d| column_entries(net, new, d)).sum();
        return UpdatePlan {
            direct: true,
            stages: vec![UpdateStage {
                dests,
                entries,
                drained: false,
                vetted: true,
            }],
            hazard_layers: Vec::new(),
        };
    };

    let changed: Vec<usize> = (0..nt)
        .filter(|&d| column_differs(net, old, new, d))
        .collect();
    if changed.is_empty() {
        return UpdatePlan::noop();
    }

    let hazards = vet::union_cycles(net, &[old, new]);
    if hazards.is_empty() {
        let entries = changed
            .iter()
            .map(|&d| column_swap_entries(net, old, new, d))
            .sum();
        return UpdatePlan {
            direct: true,
            stages: vec![UpdateStage {
                dests: changed,
                entries,
                drained: false,
                vetted: true,
            }],
            hazard_layers: Vec::new(),
        };
    }
    let hazard_layers: Vec<u8> = hazards.iter().map(|(l, _)| *l).collect();

    // Staged drain-and-swap. Stage 0: destinations whose old routes are
    // already broken — no working traffic toward them exists, so their
    // columns swap first (drained trivially).
    let mut stages = Vec::new();
    let mut swapped: FxHashSet<usize> = FxHashSet::default();
    let mut hybrid = old.clone();
    let broken: Vec<usize> = changed
        .iter()
        .copied()
        .filter(|&d| dest_broken(net, old, d))
        .collect();
    let mut stalled = false;
    if !broken.is_empty() {
        for &d in &broken {
            apply_column(net, &mut hybrid, new, d);
        }
        if vet_ok(net, &mut hybrid, hw_vls) {
            swapped.extend(broken.iter().copied());
            stages.push(UpdateStage {
                entries: broken
                    .iter()
                    .map(|&d| column_swap_entries(net, old, new, d))
                    .sum(),
                dests: broken,
                drained: true,
                vetted: true,
            });
        } else {
            // Swapping only the broken columns still leaves a hazardous
            // mix; fold them into the bulk drain below instead.
            hybrid = old.clone();
            stalled = true;
        }
    }

    let mut remaining: Vec<usize> = changed
        .iter()
        .copied()
        .filter(|d| !swapped.contains(d))
        .collect();
    if remaining.len() > MAX_GREEDY_DESTS {
        stalled = true;
    }
    while !stalled && !remaining.is_empty() {
        let mut batch = Vec::new();
        let mut deferred = Vec::new();
        for &d in &remaining {
            let before = snapshot_column(net, &hybrid, d);
            apply_column(net, &mut hybrid, new, d);
            if vet_ok(net, &mut hybrid, hw_vls) {
                batch.push(d);
            } else {
                restore_column(net, &mut hybrid, &before, d);
                deferred.push(d);
            }
        }
        if batch.is_empty() {
            stalled = true;
            break;
        }
        stages.push(UpdateStage {
            entries: batch
                .iter()
                .map(|&d| column_swap_entries(net, old, new, d))
                .sum(),
            dests: batch,
            drained: true,
            vetted: true,
        });
        remaining = deferred;
    }
    if stalled && !remaining.is_empty() {
        // Bulk drain: with traffic toward every remaining destination
        // drained, only the post-state's edges are active — and the
        // post-state is the full new routing, which the SM verified.
        let mut full = new.clone();
        let clean = vet_ok(net, &mut full, hw_vls);
        stages.push(UpdateStage {
            entries: remaining
                .iter()
                .map(|&d| column_swap_entries(net, old, new, d))
                .sum(),
            dests: remaining,
            drained: true,
            vetted: clean,
        });
    }
    UpdatePlan {
        direct: false,
        stages,
        hazard_layers,
    }
}

/// Whether any table entry or layer of destination column `d` differs.
pub fn column_differs(net: &Network, old: &Routes, new: &Routes, d: usize) -> bool {
    for (id, _) in net.nodes() {
        if old.next_hop(id, d) != new.next_hop(id, d) {
            return true;
        }
    }
    (0..net.num_terminals()).any(|s| old.layer(s, d) != new.layer(s, d))
}

/// Switch-table entries set in `new`'s column `d` (bring-up cost).
fn column_entries(net: &Network, new: &Routes, d: usize) -> usize {
    net.switches()
        .iter()
        .filter(|&&s| new.next_hop(s, d).is_some())
        .count()
}

/// Switch-table entries that differ between the two columns (SMP cost).
pub fn column_swap_entries(net: &Network, old: &Routes, new: &Routes, d: usize) -> usize {
    net.switches()
        .iter()
        .filter(|&&s| old.next_hop(s, d) != new.next_hop(s, d))
        .count()
}

/// Whether any source's walk toward destination `d` fails under `r`.
fn dest_broken(net: &Network, r: &Routes, d: usize) -> bool {
    let dst = net.terminals()[d];
    for &src in net.terminals() {
        if src == dst {
            continue;
        }
        match r.path(net, src, dst) {
            Ok(iter) => {
                if iter.collect::<Result<Vec<_>, _>>().is_err() {
                    return true;
                }
            }
            Err(_) => return true,
        }
    }
    false
}

/// One destination column of `r`: next hops per node + layers per source.
struct Column {
    next: Vec<Option<fabric::ChannelId>>,
    layers: Vec<u8>,
}

fn snapshot_column(net: &Network, r: &Routes, d: usize) -> Column {
    Column {
        next: net.nodes().map(|(id, _)| r.next_hop(id, d)).collect(),
        layers: (0..net.num_terminals()).map(|s| r.layer(s, d)).collect(),
    }
}

fn apply_column(net: &Network, r: &mut Routes, from: &Routes, d: usize) {
    for (id, _) in net.nodes() {
        match from.next_hop(id, d) {
            Some(c) => r.set_next(id, d, c),
            None => r.clear_next(id, d),
        }
    }
    for s in 0..net.num_terminals() {
        r.set_layer(s, d, from.layer(s, d));
    }
}

fn restore_column(net: &Network, r: &mut Routes, col: &Column, d: usize) {
    for (id, _) in net.nodes() {
        match col.next[id.idx()] {
            Some(c) => r.set_next(id, d, c),
            None => r.clear_next(id, d),
        }
    }
    for s in 0..net.num_terminals() {
        r.set_layer(s, d, col.layers[s]);
    }
}

/// Vet one intermediate state: walkable, within the VL budget, and —
/// the point of the exercise — acyclic per layer.
fn vet_ok(net: &Network, r: &mut Routes, hw_vls: usize) -> bool {
    r.recompute_num_layers();
    let cfg = vet::Config {
        hw_vls: Some(hw_vls.min(u8::MAX as usize) as u8),
        deadlock_error: true,
        check_minimal: false,
        // The network is constant across an update window; its V007
        // verdict is decided once by the ladder and the publish gate,
        // not re-derived for every drain-and-swap stage.
        check_existence: false,
        ..vet::Config::default()
    };
    vet::analyze_with(net, r, &cfg).clean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsssp_core::{ComputeCtx, DfSssp, RoutingEngine};
    use fabric::{degrade, topo, ChannelId};
    use rustc_hash::FxHashSet;

    #[test]
    fn remap_onto_the_same_network_is_identity() {
        let net = topo::torus(&[3, 3], 1);
        let r = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let m = remap_routes(&net, &r, &net);
        for (id, _) in net.nodes() {
            for d in 0..net.num_terminals() {
                assert_eq!(m.next_hop(id, d), r.next_hop(id, d));
            }
        }
        for s in 0..net.num_terminals() {
            for d in 0..net.num_terminals() {
                assert_eq!(m.layer(s, d), r.layer(s, d));
            }
        }
        assert_eq!(m.num_layers(), r.num_layers());
    }

    #[test]
    fn remap_drops_entries_through_vanished_hardware() {
        let net = topo::torus(&[3, 3], 1);
        let r = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        // Kill one switch-switch cable.
        let cable = net
            .channels()
            .find(|(_, c)| net.is_switch(c.src) && net.is_switch(c.dst))
            .map(|(id, _)| id)
            .unwrap();
        let mut dead = FxHashSet::default();
        dead.insert(cable);
        if let Some(rev) = net.channel(cable).rev {
            dead.insert(rev);
        }
        let degraded = degrade::remove(&net, &FxHashSet::default(), &dead);
        let m = remap_routes(&net, &r, &degraded);
        assert_eq!(m.num_nodes(), degraded.num_nodes());
        assert_eq!(m.num_terminals(), degraded.num_terminals());
        // The old routing used that cable, so at least one destination
        // must now be broken in the remapped tables.
        let broken = (0..degraded.num_terminals())
            .filter(|&d| dest_broken(&degraded, &m, d))
            .count();
        assert!(broken > 0, "removing a used cable must break a column");
        // And no surviving entry may point at a channel that is gone.
        for (id, _) in degraded.nodes() {
            for d in 0..degraded.num_terminals() {
                if let Some(c) = m.next_hop(id, d) {
                    assert_eq!(degraded.channel(c).src, id);
                }
            }
        }
    }

    #[test]
    fn unchanged_routing_plans_a_noop() {
        let net = topo::torus(&[3, 3], 1);
        let r = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let plan = plan_update(&net, Some(&r), &r, 8);
        assert!(plan.direct);
        assert!(plan.stages.is_empty());
        assert_eq!(plan.describe(), "no-op");
        assert_eq!(plan.total_entries(), 0);
    }

    #[test]
    fn bring_up_plans_direct() {
        let net = topo::torus(&[3, 3], 1);
        let r = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let plan = plan_update(&net, None, &r, 8);
        assert!(plan.direct);
        assert_eq!(plan.stages.len(), 1);
        assert!(!plan.stages[0].drained);
        assert!(plan.total_entries() > 0);
        assert_eq!(plan.describe(), "direct");
    }

    #[test]
    fn acyclic_union_goes_direct() {
        let net = topo::torus(&[3, 3], 1);
        let r = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        // Move one pair to a fresh (empty) layer: its new edges are a
        // subset of a single acyclic path, the union stays clean.
        let mut r2 = r.clone();
        r2.set_layer(0, 1, r.num_layers());
        r2.recompute_num_layers();
        let plan = plan_update(&net, Some(&r), &r2, 8);
        assert!(plan.direct, "union of old and new must be acyclic");
        assert_eq!(plan.stages.len(), 1);
        assert_eq!(plan.stages[0].dests, vec![1]);
        assert!(plan.hazard_layers.is_empty());
    }

    /// All-clockwise routing on ring(4,1), with destination layers as
    /// given. Clockwise means following each switch's channel to the
    /// next higher-index switch (wrapping).
    fn clockwise(net: &fabric::Network, dest_layer: &[u8]) -> Routes {
        let sw: Vec<_> = net.switches().to_vec();
        let step: Vec<ChannelId> = (0..sw.len())
            .map(|i| net.channel_between(sw[i], sw[(i + 1) % sw.len()]).unwrap())
            .collect();
        let mut r = Routes::new(net, "cw-test");
        for (d, &dst) in net.terminals().iter().enumerate() {
            let home = net
                .out_channels(dst)
                .iter()
                .map(|&c| net.channel(c).dst)
                .find(|&n| net.is_switch(n))
                .unwrap();
            let home_i = sw.iter().position(|&s| s == home).unwrap();
            for (i, &s) in sw.iter().enumerate() {
                if i == home_i {
                    r.set_next(s, d, net.channel_between(s, dst).unwrap());
                } else {
                    r.set_next(s, d, step[i]);
                }
            }
            for (s, &src) in net.terminals().iter().enumerate() {
                if src == dst {
                    continue;
                }
                let inj = net
                    .out_channels(src)
                    .iter()
                    .copied()
                    .find(|&c| net.is_switch(net.channel(c).dst))
                    .unwrap();
                r.set_next(src, d, inj);
                r.set_layer(s, d, dest_layer[d]);
            }
        }
        r.recompute_num_layers();
        r
    }

    #[test]
    fn cyclic_union_forces_a_staged_plan() {
        let net = topo::ring(4, 1);
        // Both routings are individually clean (each layer's clockwise
        // arcs stop short of closing the ring), but swapping the layer
        // split makes each layer's union close the cycle.
        let old = clockwise(&net, &[0, 0, 1, 1]);
        let new = clockwise(&net, &[1, 1, 0, 0]);
        assert!(vet::analyze(&net, &old).clean());
        assert!(vet::analyze(&net, &new).clean());
        assert!(!vet::union_cycles(&net, &[&old, &new]).is_empty());

        let plan = plan_update(&net, Some(&old), &new, 8);
        assert!(!plan.direct);
        assert!(!plan.hazard_layers.is_empty());
        assert!(!plan.stages.is_empty());
        assert!(plan.all_vetted(), "every stage post-state must be clean");
        assert!(plan.stages.iter().any(|s| s.drained));
        assert!(plan.describe().starts_with("staged("));
        // Every changed destination is covered exactly once.
        let mut seen = FxHashSet::default();
        for s in &plan.stages {
            for &d in &s.dests {
                assert!(seen.insert(d), "dest {d} appears in two stages");
            }
        }
        assert_eq!(seen.len(), net.num_terminals());
    }
}
