//! Synchronisation shim (see `serve::sync` for the pattern): the circuit
//! breaker's atomics come from here, so `--features loom-tests` compiles
//! the exact production state machine against the `weave` model checker
//! while the default build re-exports `std::sync::atomic` unchanged.

#[cfg(feature = "loom-tests")]
pub use weave::sync::atomic;

#[cfg(not(feature = "loom-tests"))]
pub use std::sync::atomic;
