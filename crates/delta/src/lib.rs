//! Incremental rerouting: recompute only what a fabric event dirtied.
//!
//! A cable failure on a large fabric typically invalidates a handful of
//! destination trees, yet the subnet manager's reroute path recomputes
//! every tree, rebuilds the full channel dependency graph and re-runs the
//! cycle search — O(fabric) work for an O(change) event. This crate adds
//! a delta-compute layer over a [`RoutingEngine`]:
//!
//! * [`DeltaEngine`] caches the last published epoch (network, routes, a
//!   [`fabric::ReverseIndex`] from channels to the destination trees using
//!   them, per-destination hop distances, and the layer-0 CDG edge
//!   counts). On the next route request it diffs the networks, extracts
//!   the *affected set* of destinations, re-sweeps only those trees, and
//!   patches the CDG counts instead of rebuilding them.
//! * The result is **bit-identical** to a full recompute under a
//!   snapshot-chunk compute context (`cx.chunk >= |T|`): clean trees are
//!   provably unchanged (see the dirty rules below), dirty trees are
//!   recomputed with the same deterministic Dijkstra, and the layer
//!   assignment either provably produces all-zeros (patched layer-0 CDG
//!   still acyclic) or re-runs the real budgeted assignment.
//! * [`DeltaEngine::planner`] hands out a [`DeltaPlanner`], a
//!   [`DiffPlanProvider`] that certifies *direct* table transitions in
//!   O(change): the union of the old and new all-paths CDGs is acyclic,
//!   which bounds every per-layer old∪new CDG, so no drain is needed.
//!
//! # Dirty rules
//!
//! With uniform weights (what a snapshot chunk uses), destination `d`'s
//! tree can only change if
//!
//! * a **removed** channel was a tree edge of `d` (found via the reverse
//!   index), or
//! * an **added** channel `a → b` satisfies `hop(a,d) >= hop(b,d) + 1`
//!   on the *old* network — i.e. the edge offers a path at least as short
//!   as the incumbent. Equality is included because a tie can flip the
//!   deterministic parent choice. Edges into a node that could not reach
//!   `d` are inert: if the additions connect it, some later added edge on
//!   the new path triggers the rule for `d` anyway.
//!
//! Both rules compose across multi-event diffs because clean
//! destinations' hop-distance rows remain valid by the same argument.
//!
//! When the dirty fraction exceeds [`DeltaConfig::max_dirty_fraction`],
//! the engine falls back to a full recompute (the delta would not pay for
//! itself) and rebuilds its cache from the result.

use std::sync::{Arc, Mutex, MutexGuard};

use dfsssp_core::balance::balance_layers;
use dfsssp_core::budget::{record_trip, Budget};
use dfsssp_core::dfsssp::{assign_layers_budgeted_in, LayerAssignMode};
use dfsssp_core::dijkstra::spt_to;
use dfsssp_core::paths::PathSet;
use dfsssp_core::{ComputeCtx, CycleBreakHeuristic, DfSssp, EngineConfig, RouteError, RoutingEngine};
use fabric::{ChannelId, Network, ReverseIndex, Routes};
use rustc_hash::FxHashMap;
use subnet::transition::{self, DiffPlanProvider, UpdatePlan, UpdateStage};
use telemetry::{counters, phases, Recorder, RecorderHandle};

/// Tuning knobs for the delta engine.
#[derive(Clone, Copy, Debug)]
pub struct DeltaConfig {
    /// Fall back to a full recompute when more than this fraction of the
    /// destinations is dirty. The patch path is linear in the dirty
    /// count; past roughly half the fabric a fresh sweep is cheaper and
    /// produces the identical result anyway.
    pub max_dirty_fraction: f64,
}

impl Default for DeltaConfig {
    fn default() -> Self {
        DeltaConfig {
            max_dirty_fraction: 0.5,
        }
    }
}

/// The inner-engine parameters a delta run must replicate to stay
/// bit-identical to the full pipeline.
#[derive(Clone)]
pub struct DeltaParams {
    /// Cycle-break heuristic of the budgeted layer assignment.
    pub heuristic: CycleBreakHeuristic,
    /// Virtual-layer budget.
    pub max_layers: usize,
    /// Whether paths are spread over unused layers afterwards.
    pub balance: bool,
    /// Whether the offline assignment compacts overflow layers.
    pub compact: bool,
    /// Resource bounds for each run.
    pub budget: Budget,
    /// Telemetry sink.
    pub recorder: RecorderHandle,
}

/// Engines that expose enough of their pipeline for [`DeltaEngine`] to
/// reproduce it incrementally. Returning `None` (e.g. for a
/// configuration whose layer assignment is order-dependent) disables the
/// delta path; the engine is then called through unchanged.
pub trait DeltaCapable: RoutingEngine {
    /// The parameters of the replicable pipeline, if any.
    fn delta_params(&self) -> Option<DeltaParams>;
}

impl DeltaCapable for DfSssp {
    fn delta_params(&self) -> Option<DeltaParams> {
        // Online assignment adds paths one at a time in global order; a
        // patched CDG cannot reproduce its history, so only the offline
        // mode (the paper's contribution) is delta-capable.
        if self.mode != LayerAssignMode::Offline {
            return None;
        }
        Some(DeltaParams {
            heuristic: self.heuristic,
            max_layers: self.max_layers,
            balance: self.balance,
            compact: self.compact,
            budget: self.budget.clone(),
            recorder: self.recorder.clone(),
        })
    }
}

/// What the last [`DeltaEngine`] route request did.
#[derive(Clone, Debug, Default)]
pub struct DeltaOutcome {
    /// Whether the delta path produced the routes (false = full
    /// recompute, passthrough, or error).
    pub delta: bool,
    /// Destination terminal indices whose trees were re-swept.
    pub dirty_dests: Vec<usize>,
    /// Whether the patched layer-0 CDG is acyclic (all paths fit one
    /// layer before balancing).
    pub layer0_acyclic: bool,
    /// Whether the old∪new all-paths CDG union is acyclic — the direct
    /// transition certificate [`DeltaPlanner`] hands out.
    pub union_acyclic: bool,
}

/// Cached epoch: everything needed to diff the next network against.
struct DeltaState {
    net: Network,
    routes: Routes,
    rindex: ReverseIndex,
    /// Per destination terminal index: hop distances from every node
    /// (terminal-sink metric, `u32::MAX` when unreachable).
    hopdist: Vec<Arc<Vec<u32>>>,
    /// All-paths (layer-0) CDG edge counts as a flat vector sorted by
    /// consecutive channel pair. Mirrors `Cdg::add_path` over every
    /// extracted path; kept sorted so the per-epoch patch is a linear
    /// merge with no hashing on the reroute's critical path.
    l0: Vec<((u32, u32), u32)>,
    /// Whether `l0` is acyclic.
    l0_acyclic: bool,
    /// `(clamped layer budget, balance)` the cached epoch's layer
    /// assignment ran under. When `l0_acyclic` holds, the assignment is
    /// a pure function of the pair index and these two knobs, so a later
    /// epoch in the same regime can bulk-copy the layer matrix instead
    /// of recomputing it.
    layer_cfg: Option<(usize, bool)>,
    /// The planner's transition certificate.
    cert: Cert,
}

/// The transition certificate, finished lazily: the O(fabric) remap and
/// column diff run at plan time (publication), not on the reroute's
/// critical path — [`DeltaPlanner::diff_plan`] completes and caches it
/// on first use.
enum Cert {
    /// No certificate (epoch came from a full recompute: there is no
    /// vetted predecessor to transition from).
    None,
    /// Ingredients moved (not cloned) from the previous epoch's cache.
    /// `union_acyclic` — old∪new all-paths CDG union acyclic — is
    /// already decided: it is one cheap DFS and [`DeltaOutcome`]
    /// reports it at route time.
    Pending {
        prev_net: Network,
        prev_routes: Routes,
        union_acyclic: bool,
    },
    /// Finished: what the subnet manager's remapped previous routes
    /// must look like (the planner's identity check), plus the changed
    /// destination columns and their switch-entry swap cost.
    Ready {
        expected_old: Routes,
        union_acyclic: bool,
        plan_changed: Vec<usize>,
        plan_entries: usize,
    },
}

#[derive(Default)]
struct Shared {
    state: Option<DeltaState>,
    last: Option<DeltaOutcome>,
}

/// A delta-compute wrapper around a [`DeltaCapable`] routing engine.
///
/// Behaves exactly like the inner engine (same routes, same errors, same
/// `RoutingEngine` surface); the only observable differences are speed,
/// the `delta_*` telemetry, and the [`DeltaPlanner`] certificates.
pub struct DeltaEngine<E = DfSssp> {
    inner: E,
    cfg: DeltaConfig,
    shared: Arc<Mutex<Shared>>,
}

impl<E: RoutingEngine + DeltaCapable> DeltaEngine<E> {
    /// Wrap `inner` with the default [`DeltaConfig`].
    pub fn new(inner: E) -> Self {
        Self::with_delta_config(inner, DeltaConfig::default())
    }

    /// Wrap `inner` with an explicit [`DeltaConfig`].
    pub fn with_delta_config(inner: E, cfg: DeltaConfig) -> Self {
        DeltaEngine {
            inner,
            cfg,
            shared: Arc::new(Mutex::new(Shared::default())),
        }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// A transition-plan provider backed by this engine's certificates.
    /// Hand it to `subnet::SmLoop::set_plan_provider`; it returns plans
    /// only for the exact `(old, new)` pairs this engine just computed.
    pub fn planner(&self) -> DeltaPlanner {
        DeltaPlanner {
            shared: Arc::clone(&self.shared),
        }
    }

    /// What the most recent route request did, if any.
    pub fn last_outcome(&self) -> Option<DeltaOutcome> {
        self.lock().last.clone()
    }

    fn lock(&self) -> MutexGuard<'_, Shared> {
        self.shared.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Full recompute through the inner engine, then rebuild the cache
    /// from the result (only meaningful under a snapshot chunk — other
    /// chunkings use balanced weights the dirty rules don't model).
    fn full_recompute(
        &self,
        g: &mut Shared,
        params: &DeltaParams,
        net: &Network,
        cx: &ComputeCtx,
    ) -> Result<Routes, RouteError> {
        let routes = self.inner.route_in(net, cx)?;
        if cx.chunk.max(1) >= net.num_terminals() {
            let layer_cfg = (
                params.budget.start().clamp_layers(params.max_layers),
                params.balance,
            );
            g.state = rebuild_state(net, &routes, layer_cfg);
        } else {
            g.state = None;
        }
        g.last = Some(DeltaOutcome {
            delta: false,
            dirty_dests: Vec::new(),
            layer0_acyclic: g.state.as_ref().is_some_and(|s| s.l0_acyclic),
            union_acyclic: false,
        });
        Ok(routes)
    }

    /// The delta path. `Ok(None)` means "not eligible, run the full
    /// pipeline"; errors are exactly the ones the full pipeline would
    /// raise on the same input.
    fn try_delta(
        &self,
        g: &mut Shared,
        params: &DeltaParams,
        net: &Network,
        cx: &ComputeCtx,
    ) -> Result<Option<Routes>, RouteError> {
        let Some(prev) = g.state.as_ref() else {
            return Ok(None);
        };
        let nt = net.num_terminals();
        // The diff assumes an identical node roster (degrade preserves
        // it); anything else is a different fabric, not an event.
        if prev.net.num_nodes() != net.num_nodes()
            || prev.net.num_terminals() != nt
            || prev.net.terminals() != net.terminals()
            || net
                .nodes()
                .zip(prev.net.nodes())
                .any(|((_, a), (_, b))| a.name != b.name)
        {
            return Ok(None);
        }

        let rec: &dyn Recorder = &*params.recorder;
        let guard = params.budget.start();
        guard.admit(net)?;
        if !net.is_strongly_connected() {
            return Err(RouteError::Disconnected);
        }
        guard.check_deadline()?;
        let max_layers = guard.clamp_layers(params.max_layers);

        // ---- Channel diff: match by (source node, source port). ----
        let mut new_by_key: FxHashMap<(u32, u16), ChannelId> = FxHashMap::default();
        for (cid, ch) in net.channels() {
            new_by_key.insert((ch.src.0, ch.src_port), cid);
        }
        let mut translate: Vec<Option<ChannelId>> = vec![None; prev.net.num_channels()];
        let mut matched = vec![false; net.num_channels()];
        let mut removed: Vec<ChannelId> = Vec::new();
        for (cid, ch) in prev.net.channels() {
            match new_by_key.get(&(ch.src.0, ch.src_port)) {
                Some(&nc) if net.channel(nc).dst == ch.dst => {
                    translate[cid.idx()] = Some(nc);
                    matched[nc.idx()] = true;
                }
                _ => removed.push(cid),
            }
        }
        let added: Vec<ChannelId> = net
            .channels()
            .filter(|&(c, _)| !matched[c.idx()])
            .map(|(c, _)| c)
            .collect();

        // ---- Affected set. ----
        let mut dirty = vec![false; nt];
        telemetry::timed(rec, phases::DELTA_DIRTY, || {
            for &c in &removed {
                for &d in prev.rindex.dests_of(c) {
                    dirty[d as usize] = true;
                }
            }
            for &c in &added {
                let ch = net.channel(c);
                let (a, b) = (ch.src.idx(), ch.dst.idx());
                for (d, flag) in dirty.iter_mut().enumerate() {
                    if *flag {
                        continue;
                    }
                    let row = &prev.hopdist[d];
                    if row[b] != u32::MAX && row[a] >= row[b] + 1 {
                        *flag = true;
                    }
                }
            }
        });
        let dirty_dests: Vec<usize> = (0..nt).filter(|&d| dirty[d]).collect();
        if rec.enabled() {
            rec.add(counters::DELTA_DIRTY_DSTS, dirty_dests.len() as u64);
        }
        if dirty_dests.len() as f64 > self.cfg.max_dirty_fraction * nt as f64 {
            if rec.enabled() {
                rec.add(counters::DELTA_FALLBACKS, 1);
            }
            return Ok(None);
        }

        // ---- Patch: trees, tables, CDG counts, layers. ----
        let patch = telemetry::timed(rec, phases::DELTA_PATCH, || {
            self.patch(prev, params, net, cx, &guard, max_layers, &dirty, &translate)
        })?;
        let Some((routes, l0, l0_acyclic, union_acyclic, dirty_rows)) = patch else {
            // Cache inconsistent with the diff (should not happen); a
            // full recompute both serves the request and repairs it.
            if rec.enabled() {
                rec.add(counters::DELTA_FALLBACKS, 1);
            }
            return Ok(None);
        };

        // ---- Commit the new cache; the previous epoch's artifacts move
        // into the pending certificate. ----
        // Reverse index by translation: clean destinations keep their
        // incidences (renamed into the new id space), dirty destinations
        // re-walk their fresh columns — O(incidences), not O(fabric²).
        // Ascending order per channel is restored by sorting only the
        // lists the dirty walk touched.
        let rindex = {
            let n = net.num_channels();
            // Capacity per new channel: the translated old list plus
            // room for this event's dirty appends (removals only leave
            // slack the loose CSR tolerates).
            let mut off = vec![0u32; n + 1];
            for oc in 0..prev.rindex.num_channels() {
                if let Some(nc) = translate[oc] {
                    off[nc.idx() + 1] = prev.rindex.dests_of(ChannelId(oc as u32)).len() as u32;
                }
            }
            for &d in &dirty_dests {
                for (id, _) in net.nodes() {
                    if let Some(c) = routes.next_hop(id, d) {
                        off[c.idx() + 1] += 1;
                    }
                }
            }
            for i in 1..off.len() {
                off[i] += off[i - 1];
            }
            // Bulk-copy every surviving channel's list into its slot —
            // O(incidences) of memcpy, no per-entry dirty test.
            let mut len = vec![0u32; n];
            let mut dests = vec![0u32; off[n] as usize];
            for oc in 0..prev.rindex.num_channels() {
                if let Some(nc) = translate[oc] {
                    let src = prev.rindex.dests_of(ChannelId(oc as u32));
                    let lo = off[nc.idx()] as usize;
                    dests[lo..lo + src.len()].copy_from_slice(src);
                    len[nc.idx()] = src.len() as u32;
                }
            }
            // Reconcile each dirty destination by walking its column
            // once: most nodes keep their next hop (and so their slot in
            // the index); only the handful that changed need an ordered
            // removal from the old channel's slice and an ordered insert
            // into the new one.
            for &d in &dirty_dests {
                for (id, _) in net.nodes() {
                    let new_c = routes.next_hop(id, d);
                    let old_c = prev
                        .routes
                        .next_hop(id, d)
                        .and_then(|oc| translate.get(oc.idx()).copied().flatten());
                    if new_c == old_c {
                        continue;
                    }
                    if let Some(c) = old_c {
                        let lo = off[c.idx()] as usize;
                        let l = len[c.idx()] as usize;
                        if let Ok(pos) = dests[lo..lo + l].binary_search(&(d as u32)) {
                            dests.copy_within(lo + pos + 1..lo + l, lo + pos);
                            len[c.idx()] -= 1;
                        }
                    }
                    if let Some(c) = new_c {
                        let lo = off[c.idx()] as usize;
                        let l = len[c.idx()] as usize;
                        if let Err(pos) = dests[lo..lo + l].binary_search(&(d as u32)) {
                            dests.copy_within(lo + pos..lo + l, lo + pos + 1);
                            dests[lo + pos] = d as u32;
                            len[c.idx()] += 1;
                        }
                    }
                }
            }
            ReverseIndex::from_loose_csr(off, len, dests)
        };
        let prev = g.state.take().expect("present since the diff began");
        let mut hopdist: Vec<Arc<Vec<u32>>> = Vec::with_capacity(nt);
        let mut fresh = dirty_rows.into_iter();
        for d in 0..nt {
            hopdist.push(if dirty[d] {
                Arc::new(fresh.next().expect("one row per dirty dest"))
            } else {
                Arc::clone(&prev.hopdist[d])
            });
        }
        let routes_copy = routes.clone();
        let net_copy = net.clone();
        g.state = Some(DeltaState {
            net: net_copy,
            routes: routes_copy,
            rindex,
            hopdist,
            l0,
            l0_acyclic,
            layer_cfg: Some((max_layers, params.balance)),
            cert: Cert::Pending {
                prev_net: prev.net,
                prev_routes: prev.routes,
                union_acyclic,
            },
        });
        g.last = Some(DeltaOutcome {
            delta: true,
            dirty_dests,
            layer0_acyclic: l0_acyclic,
            union_acyclic,
        });
        Ok(Some(routes))
    }

    /// Assemble the new routes and patched CDG counts. `Ok(None)` means
    /// the cache disagrees with the diff (fall back defensively).
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn patch(
        &self,
        prev: &DeltaState,
        params: &DeltaParams,
        net: &Network,
        cx: &ComputeCtx,
        guard: &dfsssp_core::BudgetGuard,
        max_layers: usize,
        dirty: &[bool],
        translate: &[Option<ChannelId>],
    ) -> Result<Option<(Routes, Vec<((u32, u32), u32)>, bool, bool, Vec<Vec<u32>>)>, RouteError> {
        let nt = net.num_terminals();
        let terminals = net.terminals();
        let rec: &dyn Recorder = &*params.recorder;

        // New tables: clean columns translate in one row-major bulk
        // pass, dirty columns re-sweep. Any uniform weight reproduces
        // the snapshot-chunk trees bit for bit (the comparisons are
        // scale-invariant), so sweep with 1s and skip the diameter-sized
        // base weight entirely.
        let mut routes = Routes::new(net, self.inner.name());
        if !routes.copy_clean_columns_translated(&prev.routes, dirty, translate) {
            return Ok(None); // clean tree through a removed channel
        }
        let ones = vec![1u64; net.num_channels()];
        let mut dirty_rows: Vec<Vec<u32>> = Vec::new();
        for d in 0..nt {
            if dirty[d] {
                let spt = spt_to(net, terminals[d], &ones);
                for (id, _) in net.nodes() {
                    if let Some(c) = spt.parent[id.idx()] {
                        routes.set_next(id, d, c);
                    }
                }
                dirty_rows.push(
                    spt.dist
                        .iter()
                        .map(|&x| if x == u64::MAX { u32::MAX } else { x as u32 })
                        .collect(),
                );
            }
        }

        // CDG counts, all flat: rename the survivors — windows through a
        // removed channel drop out, which is exact because only dirty
        // trees' paths used them — collect the dirty destinations' old
        // windows (skipping dropped ones for the same reason) and their
        // new windows as sorted delta lists, then apply both in one
        // three-way merge. The channel translation is monotone for the
        // event diffs this path serves (degrade preserves relative
        // order), so the renamed vector is already sorted; the linear
        // re-sort check below covers any exotic pairing.
        let mut base: Vec<((u32, u32), u32)> = Vec::with_capacity(prev.l0.len());
        for &((f, t), c) in &prev.l0 {
            if let (Some(nf), Some(nt2)) = (translate[f as usize], translate[t as usize]) {
                base.push(((nf.0, nt2.0), c));
            }
        }
        if !base.windows(2).all(|w| w[0].0 < w[1].0) {
            base.sort_unstable_by_key(|e| e.0);
        }
        let mut decs: Vec<(u32, u32)> = Vec::new();
        let mut incs: Vec<(u32, u32)> = Vec::new();
        for (d, &t) in terminals.iter().enumerate() {
            if !dirty[d] {
                continue;
            }
            for s in 0..nt {
                if s == d {
                    continue;
                }
                let Ok(walk) = prev.routes.path(&prev.net, terminals[s], t) else {
                    return Ok(None);
                };
                let mut last: Option<u32> = None;
                for step in walk {
                    let Ok(c) = step else { return Ok(None) };
                    if let Some(p) = last {
                        if let (Some(nf), Some(nt2)) =
                            (translate[p as usize], translate[c.idx()])
                        {
                            decs.push((nf.0, nt2.0));
                        }
                    }
                    last = Some(c.0);
                }
                let Ok(walk) = routes.path(net, terminals[s], t) else {
                    return Ok(None);
                };
                let mut last: Option<u32> = None;
                for step in walk {
                    let Ok(c) = step else { return Ok(None) };
                    if let Some(p) = last {
                        incs.push((p, c.0));
                    }
                    last = Some(c.0);
                }
            }
        }
        decs.sort_unstable();
        incs.sort_unstable();

        // Union-first acyclicity: the old∪new all-paths CDG union is
        // both the planner's direct-transition certificate and a
        // superset of the patched graph, so when it is acyclic — the
        // common case for a cable event on a path-diverse fabric — one
        // DFS settles both questions. (`base ∪ incs` covers the union:
        // every patched window survives from `base` or was added by a
        // dirty tree.)
        let union_acyclic = prev.l0_acyclic
            && dense_acyclic(
                net.num_channels(),
                base.iter().map(|&(k, _)| k).chain(incs.iter().copied()),
            );

        // Apply the delta: one merge pass in key order. A decrement of a
        // missing key (or below zero) means the cache disagrees with the
        // diff — bail and let the full pipeline repair it.
        let mut l0: Vec<((u32, u32), u32)> = Vec::with_capacity(base.len() + incs.len());
        let (mut bi, mut di, mut ii) = (0, 0, 0);
        while bi < base.len() || di < decs.len() || ii < incs.len() {
            let mut k = (u32::MAX, u32::MAX);
            if let Some(&(bk, _)) = base.get(bi) {
                k = k.min(bk);
            }
            if let Some(&dk) = decs.get(di) {
                k = k.min(dk);
            }
            if let Some(&ik) = incs.get(ii) {
                k = k.min(ik);
            }
            let mut count: i64 = 0;
            let mut in_base = false;
            if let Some(&(bk, c)) = base.get(bi) {
                if bk == k {
                    count = i64::from(c);
                    in_base = true;
                    bi += 1;
                }
            }
            let mut removed_here: i64 = 0;
            while decs.get(di) == Some(&k) {
                removed_here += 1;
                di += 1;
            }
            // Decrements must be covered by the old count alone; the
            // increments only land afterwards, as in a map-based patch.
            if removed_here > 0 && (!in_base || removed_here > count) {
                return Ok(None);
            }
            count -= removed_here;
            while incs.get(ii) == Some(&k) {
                count += 1;
                ii += 1;
            }
            if count > 0 {
                l0.push((k, count as u32));
            }
        }
        // Same budget the full pipeline holds layer 0 against.
        guard.check_cdg_edges(l0.len())?;

        // Layer assignment. Fast path: the patched all-paths CDG is
        // acyclic (it is a subgraph of an acyclic union, or its own DFS
        // says so), so the budgeted assignment would break no cycles,
        // every path stays in layer 0, and only the balancing spread
        // remains. In that regime the assignment is a pure function of
        // the pair index and the (budget, balance) knobs — when the
        // cached epoch ran under the same knobs with an acyclic layer 0,
        // its matrix is bit-identical and one memcpy replaces the
        // per-pair rewrite. Otherwise run the real thing on the real
        // path set.
        let l0_acyclic = union_acyclic
            || dense_acyclic(net.num_channels(), l0.iter().map(|&(k, _)| k));
        if l0_acyclic {
            if prev.l0_acyclic && prev.layer_cfg == Some((max_layers, params.balance)) {
                routes.copy_layers_from(&prev.routes);
            } else {
                let mut layers = vec![0u8; nt * (nt - 1)];
                telemetry::timed(rec, phases::BALANCE, || {
                    if params.balance {
                        balance_layers(&mut layers, 1, max_layers);
                    }
                });
                let mut p = 0usize;
                for s in 0..nt {
                    for d in 0..nt {
                        if s == d {
                            continue;
                        }
                        routes.set_layer(s, d, layers[p]);
                        p += 1;
                    }
                }
            }
        } else {
            let ps = PathSet::extract_in(net, &routes, cx)?;
            let (mut layers, stats) = assign_layers_budgeted_in(
                &ps,
                params.heuristic,
                max_layers,
                params.compact,
                rec,
                guard,
                cx,
            )?;
            telemetry::timed(rec, phases::BALANCE, || {
                if params.balance {
                    balance_layers(&mut layers, stats.layers_used, max_layers);
                }
            });
            for p in ps.ids() {
                let (s, d) = ps.pair(p);
                routes.set_layer(s as usize, d as usize, layers[p as usize]);
            }
            // The DFS and the budgeted assignment agree on acyclicity:
            // a cyclic all-paths CDG forces at least one break.
            debug_assert!(stats.cycles_broken > 0);
        }
        routes.recompute_num_layers();
        routes.set_engine(self.inner.name());
        Ok(Some((routes, l0, l0_acyclic, union_acyclic, dirty_rows)))
    }
}

impl<E: RoutingEngine + DeltaCapable> RoutingEngine for DeltaEngine<E> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn route_in(&self, net: &Network, cx: &ComputeCtx) -> Result<Routes, RouteError> {
        let Some(params) = self.inner.delta_params() else {
            // Not replicable (e.g. online mode): plain passthrough, and
            // the cache no longer describes what this engine produces.
            let mut g = self.lock();
            g.state = None;
            g.last = Some(DeltaOutcome::default());
            drop(g);
            return self.inner.route_in(net, cx);
        };
        if cx.chunk.max(1) < net.num_terminals() {
            // Chunked wavefronts use balanced weights; the dirty rules
            // only hold for the single-snapshot schedule.
            let mut g = self.lock();
            g.last = Some(DeltaOutcome::default());
            drop(g);
            return self.inner.route_in(net, cx);
        }
        let mut g = self.lock();
        let rec = params.recorder.clone();
        let res = self.try_delta(&mut g, &params, net, cx);
        match record_trip(&*rec, res) {
            Ok(Some(routes)) => Ok(routes),
            Ok(None) => self.full_recompute(&mut g, &params, net, cx),
            Err(e) => {
                g.last = Some(DeltaOutcome::default());
                Err(e)
            }
        }
    }

    fn deadlock_free(&self) -> bool {
        self.inner.deadlock_free()
    }

    fn tunables(&self) -> bool {
        self.inner.tunables()
    }

    fn config(&self) -> EngineConfig {
        self.inner.config()
    }

    fn set_config(&mut self, config: EngineConfig) {
        self.inner.set_config(config);
    }
}

/// A [`DiffPlanProvider`] backed by a [`DeltaEngine`]'s certificates.
///
/// Returns a one-stage *direct* plan when the `(old, new)` pair it is
/// asked about is exactly the pair the engine just computed — the served
/// previous routes remap to what the engine expected, the new routes are
/// the engine's own output, and the old∪new all-paths CDG union was
/// acyclic (which bounds every per-layer union, the actual hazard
/// condition). Anything else returns `None` and the caller re-derives a
/// plan from scratch.
pub struct DeltaPlanner {
    shared: Arc<Mutex<Shared>>,
}

impl DiffPlanProvider for DeltaPlanner {
    fn diff_plan(
        &self,
        net: &Network,
        old: &Routes,
        new: &Routes,
        _hw_vls: usize,
    ) -> Option<UpdatePlan> {
        let mut g = self.shared.lock().unwrap_or_else(|e| e.into_inner());
        let st = g.state.as_mut()?;
        // Finish a pending certificate once: the O(fabric) remap and
        // column diff were deferred off the reroute's critical path.
        if matches!(st.cert, Cert::Pending { .. }) {
            let Cert::Pending {
                prev_net,
                prev_routes,
                union_acyclic,
            } = std::mem::replace(&mut st.cert, Cert::None)
            else {
                unreachable!("matched Pending above");
            };
            let expected_old = transition::remap_routes(&prev_net, &prev_routes, &st.net);
            let plan_changed: Vec<usize> = (0..st.net.num_terminals())
                .filter(|&d| transition::column_differs(&st.net, &expected_old, &st.routes, d))
                .collect();
            let plan_entries = plan_changed
                .iter()
                .map(|&d| transition::column_swap_entries(&st.net, &expected_old, &st.routes, d))
                .sum();
            st.cert = Cert::Ready {
                expected_old,
                union_acyclic,
                plan_changed,
                plan_entries,
            };
        }
        let Cert::Ready {
            expected_old,
            union_acyclic,
            plan_changed,
            plan_entries,
        } = &st.cert
        else {
            return None;
        };
        if !union_acyclic {
            return None;
        }
        if old != expected_old || *new != st.routes {
            return None;
        }
        if new.num_nodes() != net.num_nodes() || new.num_terminals() != net.num_terminals() {
            return None;
        }
        if plan_changed.is_empty() {
            return Some(UpdatePlan::noop());
        }
        Some(UpdatePlan {
            direct: true,
            stages: vec![UpdateStage {
                dests: plan_changed.clone(),
                entries: *plan_entries,
                drained: false,
                vetted: true,
            }],
            hazard_layers: Vec::new(),
        })
    }
}

/// Rebuild the cache from a full recompute's output. `None` if the
/// routes cannot be walked (leave the cache empty rather than poisoned).
/// `layer_cfg` is the layer-assignment regime the recompute ran under
/// (see [`DeltaState::layer_cfg`]).
fn rebuild_state(net: &Network, routes: &Routes, layer_cfg: (usize, bool)) -> Option<DeltaState> {
    let nt = net.num_terminals();
    let terminals = net.terminals();
    let mut l0: FxHashMap<(u32, u32), u32> = FxHashMap::default();
    for (d, &t) in terminals.iter().enumerate() {
        for s in 0..nt {
            if s == d {
                continue;
            }
            let chans = routes.path_channels(net, terminals[s], t).ok()?;
            for w in chans.windows(2) {
                *l0.entry((w[0].0, w[1].0)).or_insert(0) += 1;
            }
        }
    }
    let mut l0: Vec<((u32, u32), u32)> = l0.into_iter().collect();
    l0.sort_unstable_by_key(|e| e.0);
    let l0_acyclic = dense_acyclic(net.num_channels(), l0.iter().map(|&(k, _)| k));
    Some(DeltaState {
        net: net.clone(),
        routes: routes.clone(),
        rindex: ReverseIndex::build(net, routes),
        hopdist: terminals.iter().map(|&t| Arc::new(net.hops_to(t))).collect(),
        l0,
        l0_acyclic,
        layer_cfg: Some(layer_cfg),
        cert: Cert::None,
    })
}

/// Iterative three-color DFS over channel-id edges. Channel ids are
/// dense (`< num_channels`), so the graph is a flat CSR and the colors
/// a flat byte vector — this sits on the reroute's critical path, where
/// both hashing and per-node adjacency allocations dominated. The edge
/// iterator is walked twice (degree count, then fill); duplicate edges
/// are harmless.
fn dense_acyclic<I>(num_channels: usize, edges: I) -> bool
where
    I: Iterator<Item = (u32, u32)> + Clone,
{
    // CSR: off[c] .. off[c + 1] indexes c's successors in `heads`.
    let mut off = vec![0u32; num_channels + 1];
    for (f, _) in edges.clone() {
        off[f as usize + 1] += 1;
    }
    for i in 1..off.len() {
        off[i] += off[i - 1];
    }
    let mut cursor: Vec<u32> = off[..num_channels].to_vec();
    let mut heads = vec![0u32; off[num_channels] as usize];
    for (f, t) in edges {
        let slot = &mut cursor[f as usize];
        heads[*slot as usize] = t;
        *slot += 1;
    }
    let mut color = vec![0u8; num_channels]; // 1 = open, 2 = done
    let mut stack: Vec<(u32, u32)> = Vec::new(); // (node, next edge slot)
    for start in 0..num_channels {
        if color[start] != 0 {
            continue;
        }
        color[start] = 1;
        stack.push((start as u32, off[start]));
        while let Some(&mut (u, ref mut i)) = stack.last_mut() {
            if *i < off[u as usize + 1] {
                let v = heads[*i as usize];
                *i += 1;
                match color[v as usize] {
                    1 => return false,
                    2 => {}
                    _ => {
                        color[v as usize] = 1;
                        stack.push((v, off[v as usize]));
                    }
                }
            } else {
                color[u as usize] = 2;
                stack.pop();
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsssp_core::verify::verify_deadlock_free;
    use fabric::{degrade, topo};

    fn snap_cx(net: &Network) -> ComputeCtx {
        ComputeCtx {
            threads: 1,
            chunk: net.num_terminals().max(1),
        }
    }

    fn fail_one_cable(net: &Network, seed: u64) -> Network {
        let (degraded, n) = degrade::fail_random_cables(net, 1, seed);
        assert_eq!(n, 1, "seed must find a removable cable");
        degraded
    }

    /// Engine that never falls back on dirty fraction — the test
    /// topologies are small enough that one cable can dirty most trees.
    fn eager() -> DeltaEngine {
        DeltaEngine::with_delta_config(
            DfSssp::new(),
            DeltaConfig {
                max_dirty_fraction: 1.0,
            },
        )
    }

    #[test]
    fn delta_matches_full_recompute_on_cable_failure() {
        let net = topo::torus(&[4, 4], 1);
        let cx = snap_cx(&net);
        let engine = eager();
        let warm = engine.route_in(&net, &cx).unwrap();
        assert_eq!(warm, DfSssp::new().route_in(&net, &cx).unwrap());
        assert!(!engine.last_outcome().unwrap().delta);

        let degraded = fail_one_cable(&net, 7);
        let fast = engine.route_in(&degraded, &cx).unwrap();
        let outcome = engine.last_outcome().unwrap();
        assert!(outcome.delta, "single cable failure must take the delta path");
        assert!(!outcome.dirty_dests.is_empty());
        assert!(
            outcome.dirty_dests.len() < net.num_terminals(),
            "a single cable must not dirty every destination"
        );
        let full = DfSssp::new().route_in(&degraded, &cx).unwrap();
        assert_eq!(fast, full, "delta must be bit-identical to full recompute");
        verify_deadlock_free(&degraded, &fast).unwrap();
    }

    #[test]
    fn delta_chains_across_consecutive_failures() {
        let net = topo::dragonfly(3, 1, 1);
        let cx = snap_cx(&net);
        let engine = eager();
        engine.route_in(&net, &cx).unwrap();
        let mut current = net;
        for seed in 1..4u64 {
            let (next, n) = degrade::fail_random_cables(&current, 1, seed);
            if n == 0 {
                break;
            }
            let fast = engine.route_in(&next, &cx).unwrap();
            let full = DfSssp::new().route_in(&next, &cx).unwrap();
            assert_eq!(fast, full, "epoch after seed {seed}");
            current = next;
        }
    }

    #[test]
    fn zero_threshold_forces_full_recompute() {
        let net = topo::torus(&[4, 4], 1);
        let cx = snap_cx(&net);
        let engine =
            DeltaEngine::with_delta_config(DfSssp::new(), DeltaConfig { max_dirty_fraction: 0.0 });
        engine.route_in(&net, &cx).unwrap();
        let degraded = fail_one_cable(&net, 7);
        let routes = engine.route_in(&degraded, &cx).unwrap();
        assert!(!engine.last_outcome().unwrap().delta);
        assert_eq!(routes, DfSssp::new().route_in(&degraded, &cx).unwrap());
    }

    #[test]
    fn chunked_context_passes_through() {
        let net = topo::torus(&[3, 3], 1);
        let engine = DeltaEngine::new(DfSssp::new());
        let cx = ComputeCtx { threads: 1, chunk: 1 };
        let routes = engine.route_in(&net, &cx).unwrap();
        assert_eq!(routes, DfSssp::new().route_in(&net, &cx).unwrap());
        assert!(!engine.last_outcome().unwrap().delta);
    }

    #[test]
    fn online_mode_is_not_delta_capable() {
        let engine = DfSssp {
            mode: LayerAssignMode::Online,
            ..DfSssp::new()
        };
        assert!(engine.delta_params().is_none());
        let net = topo::ring(5, 1);
        let wrapped = DeltaEngine::new(engine.clone());
        let cx = snap_cx(&net);
        assert_eq!(
            wrapped.route_in(&net, &cx).unwrap(),
            engine.route_in(&net, &cx).unwrap()
        );
    }

    #[test]
    fn planner_certifies_direct_transition() {
        let net = topo::kary_ntree(2, 3); // tree: layer-0 CDG stays acyclic
        let cx = snap_cx(&net);
        let engine = eager();
        let planner = engine.planner();
        let old = engine.route_in(&net, &cx).unwrap();
        let degraded = fail_one_cable(&net, 3);
        let new = engine.route_in(&degraded, &cx).unwrap();
        let outcome = engine.last_outcome().unwrap();
        assert!(outcome.delta);
        assert!(outcome.union_acyclic, "tree unions stay acyclic");
        let remapped = transition::remap_routes(&net, &old, &degraded);
        let plan = planner
            .diff_plan(&degraded, &remapped, &new, 8)
            .expect("certificate held");
        assert!(plan.direct);
        assert!(plan.all_vetted());
        let dests: Vec<usize> = plan.stages.iter().flat_map(|s| s.dests.clone()).collect();
        for d in &dests {
            assert!(
                transition::column_differs(&degraded, &remapped, &new, *d),
                "planned dest {d} must actually differ"
            );
        }
        // The plan agrees with the from-scratch planner about safety.
        let scratch = transition::plan_update(&degraded, Some(&remapped), &new, 8);
        assert!(scratch.direct, "scratch planner must agree the union is safe");
    }

    #[test]
    fn planner_rejects_foreign_pairs() {
        let net = topo::torus(&[4, 4], 1);
        let cx = snap_cx(&net);
        let engine = eager();
        let planner = engine.planner();
        let routes = engine.route_in(&net, &cx).unwrap();
        // Full recompute holds no certificate.
        assert!(planner.diff_plan(&net, &routes, &routes, 8).is_none());
        let degraded = fail_one_cable(&net, 7);
        let new = engine.route_in(&degraded, &cx).unwrap();
        // A mismatched old (not the remap of the served epoch) is refused.
        assert!(planner.diff_plan(&degraded, &new, &new, 8).is_none());
    }

    #[test]
    fn recovery_readd_is_handled() {
        // Remove a cable, then restore it: the second delta must match a
        // fresh full recompute on the restored (original) network.
        let net = topo::torus(&[4, 4], 1);
        let cx = snap_cx(&net);
        let engine = eager();
        engine.route_in(&net, &cx).unwrap();
        let degraded = fail_one_cable(&net, 7);
        engine.route_in(&degraded, &cx).unwrap();
        let fast = engine.route_in(&net, &cx).unwrap();
        let outcome = engine.last_outcome().unwrap();
        assert!(outcome.delta, "re-add must take the delta path");
        assert_eq!(fast, DfSssp::new().route_in(&net, &cx).unwrap());
    }
}
